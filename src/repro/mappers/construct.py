"""The constructive mapping engine.

Most published heuristics share one skeleton: walk the operations in
some priority order; for each, scan candidate ``(cell, cycle)`` slots
in some preference order; commit the first slot from which every edge
to an already-placed endpoint can be routed; fail (for this II) when an
operation has no feasible slot.  What distinguishes EMS from a plain
list scheduler from UltraFast is *which* order and *which* preference —
so those arrive as parameters, and the mapper modules are thin.

:class:`PlacementState` is the mutable working set (occupancy, partial
binding/schedule/routes) with transactional ``place``/``unplace`` so
simulated-annealing mappers can reuse it for rip-up-and-reroute moves.
For annealing loops it also keeps an optional **delta-undo journal**
(:meth:`begin_undo` / :meth:`mark` / :meth:`undo_to` / :meth:`commit`):
every mutation appends its inverse, so rejecting a move replays a few
inverse operations instead of deep-copying occupancy, binding,
schedule, and routes on every move.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Sequence

from repro.arch.cgra import CGRA
from repro.arch.tec import Step
from repro.core.mapping import Mapping
from repro.core.resources import Occupancy
from repro.ir.dfg import DFG, Edge
from repro.mappers.routing import (
    Router,
    RouteRequest,
    commit_route,
    release_route,
)
from repro.obs.tracer import (
    BACKTRACKS,
    CANDIDATES_EXPLORED,
    ROUTING_ATTEMPTS,
    get_tracer,
)

__all__ = ["PlacementState", "greedy_construct", "default_candidates"]


class PlacementState:
    """Partial mapping under construction for one II."""

    def __init__(
        self, dfg: DFG, cgra: CGRA, ii: int, *, allow_hold: bool = True
    ) -> None:
        self.dfg = dfg
        self.cgra = cgra
        self.ii = ii
        self.occ = Occupancy(cgra, ii)
        self.router = Router(cgra, allow_hold=allow_hold)
        self.binding: dict[int, int] = {}
        self.schedule: dict[int, int] = {}
        self.routes: dict[Edge, list[Step]] = {}
        # Delta-undo journal: None until begin_undo() enables it.
        self._undo: list[tuple] | None = None
        # Captured once: a PlacementState lives within one mapper run,
        # so the active tracer cannot change under it.
        self._tracer = get_tracer()

    # -- delta-undo journal --------------------------------------------
    def begin_undo(self) -> None:
        """Start journaling mutations so they can be rolled back."""
        self._undo = []

    def mark(self) -> int:
        """A rollback point for :meth:`undo_to` (journal must be on)."""
        assert self._undo is not None, "begin_undo() first"
        return len(self._undo)

    def undo_to(self, mark: int) -> None:
        """Replay inverse operations until the journal shrinks to ``mark``."""
        undo = self._undo
        assert undo is not None
        while len(undo) > mark:
            entry = undo.pop()
            kind = entry[0]
            if kind == "op+":
                _, nid, cell, t = entry
                self.occ.release_op(cell, t)
                del self.binding[nid], self.schedule[nid]
            elif kind == "op-":
                _, nid, cell, t = entry
                self.occ.place_op(nid, cell, t)
                self.binding[nid] = cell
                self.schedule[nid] = t
            elif kind == "rt+":
                _, e, req, steps = entry
                release_route(self.occ, self.cgra, req, steps)
                del self.routes[e]
            else:  # "rt-"
                _, e, req, steps = entry
                commit_route(self.occ, self.cgra, req, steps)
                self.routes[e] = steps

    def commit(self) -> None:
        """Accept everything journaled so far (the log is cleared)."""
        assert self._undo is not None
        self._undo.clear()

    # ------------------------------------------------------------------
    def _edge_request(self, e: Edge) -> RouteRequest:
        lat = self.dfg.node(e.src).op.latency
        return RouteRequest(
            value=e.src,
            src_cell=self.binding[e.src],
            t_emit=self.schedule[e.src] + lat - 1,
            dst_cell=self.binding[e.dst],
            t_consume=self.schedule[e.dst] + e.dist * self.ii,
        )

    def _routable_edges_of(self, nid: int) -> list[Edge]:
        """Edges of ``nid`` whose other endpoint is already placed."""
        out = []
        for e in self.dfg.in_edges(nid):
            if self.dfg.node(e.src).op.is_pseudo:
                continue
            if e.src in self.binding:
                out.append(e)
        for e in self.dfg.out_edges(nid):
            if self.dfg.node(e.dst).op.is_pseudo:
                continue
            if e.dst in self.binding and e.dst != nid:
                out.append(e)
        return out

    def place(self, nid: int, cell: int, t: int) -> bool:
        """Try to place ``nid`` at ``(cell, t)`` and route its edges.

        Atomic: on any failure the state is unchanged.
        """
        node = self.dfg.node(nid)
        if t < 0 or not self.cgra.cell(cell).supports(node.op):
            return False
        if not self.occ.can_place_op(cell, t):
            return False
        self.occ.place_op(nid, cell, t)
        self.binding[nid] = cell
        self.schedule[nid] = t

        committed: list[tuple[Edge, RouteRequest, list[Step]]] = []
        for e in self._routable_edges_of(nid):
            req = self._edge_request(e)
            self._tracer.count(ROUTING_ATTEMPTS)
            steps = self.router.find(self.occ, req)
            if steps is None:
                self._tracer.count(BACKTRACKS)
                for ce, creq, csteps in committed:
                    release_route(self.occ, self.cgra, creq, csteps)
                    del self.routes[ce]
                self.occ.release_op(cell, t)
                del self.binding[nid], self.schedule[nid]
                return False
            commit_route(self.occ, self.cgra, req, steps)
            self.routes[e] = steps
            committed.append((e, req, steps))
        if self._undo is not None:
            self._undo.append(("op+", nid, cell, t))
            for ce, creq, csteps in committed:
                self._undo.append(("rt+", ce, creq, csteps))
        return True

    def place_loose(self, nid: int, cell: int, t: int) -> bool:
        """Place ``nid`` if its FU slot is free, routing edges best-effort.

        Unlike :meth:`place`, edges that cannot be routed right now are
        left pending (see :meth:`unrouted_edges`) instead of rolling
        the placement back — the accounting simulated-annealing mappers
        (DRESC-style) need, where infeasible intermediate states are
        part of the walk and are penalised by the cost function.
        """
        node = self.dfg.node(nid)
        if t < 0 or not self.cgra.cell(cell).supports(node.op):
            return False
        if not self.occ.can_place_op(cell, t):
            return False
        self.occ.place_op(nid, cell, t)
        self.binding[nid] = cell
        self.schedule[nid] = t
        if self._undo is not None:
            self._undo.append(("op+", nid, cell, t))
        for e in self._routable_edges_of(nid):
            self.try_route(e)
        return True

    def try_route(self, e: Edge) -> bool:
        """Attempt to route one pending edge; both endpoints must be placed."""
        if e in self.routes:
            return True
        req = self._edge_request(e)
        if req.t_consume < req.t_emit + 1:
            return False  # timing violation: no path can fix this
        self._tracer.count(ROUTING_ATTEMPTS)
        steps = self.router.find(self.occ, req)
        if steps is None:
            return False
        commit_route(self.occ, self.cgra, req, steps)
        self.routes[e] = steps
        if self._undo is not None:
            self._undo.append(("rt+", e, req, steps))
        return True

    def unrouted_edges(self) -> list[Edge]:
        """Routable edges with both endpoints placed but no route yet."""
        out = []
        for e in self.dfg.edges():
            if (
                e.src in self.binding
                and e.dst in self.binding
                and e not in self.routes
                and not self.dfg.node(e.src).op.is_pseudo
                and not self.dfg.node(e.dst).op.is_pseudo
            ):
                out.append(e)
        return out

    def unplace(self, nid: int) -> None:
        """Remove ``nid`` and the routes of its placed edges."""
        cell, t = self.binding[nid], self.schedule[nid]
        for e in self._routable_edges_of(nid):
            if e in self.routes:
                req = self._edge_request(e)
                steps = self.routes.pop(e)
                release_route(self.occ, self.cgra, req, steps)
                if self._undo is not None:
                    self._undo.append(("rt-", e, req, steps))
        self.occ.release_op(cell, t)
        del self.binding[nid], self.schedule[nid]
        if self._undo is not None:
            self._undo.append(("op-", nid, cell, t))

    # ------------------------------------------------------------------
    def time_bounds(self, nid: int, window: int) -> tuple[int, int]:
        """Feasible issue-cycle interval given placed neighbours."""
        lb = 0
        ub = lb + window
        for e in self.dfg.in_edges(nid):
            if e.src in self.schedule and not self.dfg.node(e.src).op.is_pseudo:
                lat = self.dfg.node(e.src).op.latency
                lb = max(lb, self.schedule[e.src] + lat - e.dist * self.ii)
        ub = lb + window
        for e in self.dfg.out_edges(nid):
            if (
                e.dst in self.schedule
                and e.dst != nid
                and not self.dfg.node(e.dst).op.is_pseudo
            ):
                lat = self.dfg.node(nid).op.latency
                ub = min(
                    ub,
                    self.schedule[e.dst] + e.dist * self.ii - lat,
                )
        return lb, ub

    def neighbor_cells(self, nid: int) -> list[int]:
        """Cells of already-placed graph neighbours (for cost)."""
        cells = []
        for e in self.dfg.in_edges(nid):
            if e.src in self.binding:
                cells.append(self.binding[e.src])
        for e in self.dfg.out_edges(nid):
            if e.dst in self.binding and e.dst != nid:
                cells.append(self.binding[e.dst])
        return cells

    def to_mapping(self, mapper: str = "?") -> Mapping:
        return Mapping(
            self.dfg,
            self.cgra,
            kind="modulo",
            binding=dict(self.binding),
            schedule=dict(self.schedule),
            routes=dict(self.routes),
            ii=self.ii,
            mapper=mapper,
        )


# ---------------------------------------------------------------------------
CandidateFn = Callable[
    [PlacementState, int, int, int], Iterable[tuple[int, int]]
]


def default_candidates(
    state: PlacementState,
    nid: int,
    lb: int,
    ub: int,
    *,
    rng: random.Random | None = None,
) -> Iterable[tuple[int, int]]:
    """(cell, t) slots in time order, nearest-to-neighbours first.

    The default preference of the constructive engine: earliest cycle
    first (keeps schedules short), and within a cycle the cells closest
    to the op's placed graph neighbours (keeps routes short).  ``rng``
    shuffles distance ties to decorrelate restarts.
    """
    cgra = state.cgra
    op = state.dfg.node(nid).op
    anchors = state.neighbor_cells(nid)
    cells = list(cgra.supporting_cells(op))
    dist = cgra.distance_table()

    def dist_cost(c: int) -> int:
        return sum(min(dist[a][c], dist[c][a]) for a in anchors)

    if rng is not None:
        rng.shuffle(cells)
    cells.sort(key=dist_cost)
    for t in range(lb, ub + 1):
        for c in cells:
            yield (c, t)


def greedy_construct(
    dfg: DFG,
    cgra: CGRA,
    ii: int,
    order: Sequence[int],
    *,
    candidates: CandidateFn | None = None,
    window: int | None = None,
    rng: random.Random | None = None,
    allow_hold: bool = True,
) -> Mapping | None:
    """Run the constructive skeleton for one II.

    Returns a finished mapping (not yet validated) or None when some
    operation found no feasible slot.
    """
    tracer = get_tracer()
    state = PlacementState(dfg, cgra, ii, allow_hold=allow_hold)
    win = window if window is not None else max(2 * ii + 2, 6)
    for nid in order:
        lb, ub = state.time_bounds(nid, win)
        if lb > ub:
            return None
        placed = False
        if candidates is not None:
            slots = candidates(state, nid, lb, ub)
        else:
            slots = default_candidates(state, nid, lb, ub, rng=rng)
        for cell, t in slots:
            tracer.count(CANDIDATES_EXPLORED)
            if state.place(nid, cell, t):
                placed = True
                break
        if not placed:
            return None
    return state.to_mapping()
