"""Shared machinery for spatial (binding-only) mappers.

A spatial mapping dedicates one cell per operation — FPGA-style fully
pipelined dataflow (§II-B "spatial computation").  What varies between
the spatial mappers is how the binding is chosen; routing is common: a
value crossing non-adjacent cells claims a chain of *free* cells as
dedicated routers, each carrying exactly one value for the whole
execution.

:func:`route_spatial` performs that routing (BFS per edge, longest
edges first, fan-out shares allowed); :func:`spatial_cost` is the
wirelength + congestion objective the meta-heuristics minimise;
:func:`finalize` bundles binding + routing into a validated
:class:`~repro.core.mapping.Mapping`.
"""

from __future__ import annotations

import random
from collections import deque

from repro.arch.cgra import CGRA
from repro.arch.tec import ROUTE, Step
from repro.core.mapping import Mapping
from repro.ir.dfg import DFG, Edge

__all__ = [
    "route_spatial",
    "spatial_cost",
    "incident_edges",
    "finalize",
    "random_binding",
    "candidate_cells",
]


def candidate_cells(dfg: DFG, cgra: CGRA, nid: int) -> list[int]:
    """Cells that can host ``nid`` (memoized per opcode on the CGRA)."""
    return list(cgra.supporting_cells(dfg.node(nid).op))


def random_binding(
    dfg: DFG, cgra: CGRA, rng: random.Random
) -> dict[int, int] | None:
    """A random injective binding respecting op support, or None."""
    binding: dict[int, int] = {}
    used: set[int] = set()
    nodes = [n.nid for n in dfg.nodes() if not n.op.is_pseudo]
    # Most-constrained ops first (fewest candidate cells).
    nodes.sort(key=lambda n: len(candidate_cells(dfg, cgra, n)))
    for nid in nodes:
        options = [c for c in candidate_cells(dfg, cgra, nid) if c not in used]
        if not options:
            return None
        cell = rng.choice(options)
        binding[nid] = cell
        used.add(cell)
    return binding


def _routable_edges(dfg: DFG) -> list[Edge]:
    return [
        e
        for e in dfg.edges()
        if not dfg.node(e.src).op.is_pseudo
        and not dfg.node(e.dst).op.is_pseudo
    ]


def spatial_cost(dfg: DFG, cgra: CGRA, binding: dict[int, int]) -> float:
    """Wirelength proxy: sum over edges of (hop distance - 1)+.

    Zero when every edge connects adjacent (or identical) cells — i.e.
    no route cells are needed at all.
    """
    total = 0.0
    for e in _routable_edges(dfg):
        src, dst = binding[e.src], binding[e.dst]
        if src == dst:
            continue
        total += max(0, cgra.distance(src, dst) - 1)
    return total


def incident_edges(dfg: DFG) -> dict[int, list[Edge]]:
    """Routable edges grouped by endpoint node.

    Lets a move-based search recompute only the cost terms its moved
    ops touch (the :func:`spatial_cost` summand is per-edge, so a move
    changes exactly the edges incident to the moved ops).
    """
    table: dict[int, list[Edge]] = {}
    for e in _routable_edges(dfg):
        table.setdefault(e.src, []).append(e)
        if e.dst != e.src:
            table.setdefault(e.dst, []).append(e)
    return table


def route_spatial(
    dfg: DFG, cgra: CGRA, binding: dict[int, int]
) -> dict[Edge, list[Step]] | None:
    """Claim route cells for every non-adjacent edge; None on failure.

    Route cells must be free of operations and carry one value each;
    edges of the same value may share cells (fan-out).  Edges are
    routed longest-first (hardest first), each by BFS over usable
    cells.
    """
    op_cells = set(binding.values())
    owner: dict[int, int] = {}  # route cell -> value
    routes: dict[Edge, list[Step]] = {}

    edges = _routable_edges(dfg)
    edges.sort(
        key=lambda e: -cgra.distance(binding[e.src], binding[e.dst])
    )
    for e in edges:
        src, dst = binding[e.src], binding[e.dst]
        if src == dst or cgra.has_link(src, dst):
            continue

        def usable(cell: int, value: int) -> bool:
            if cell in op_cells:
                return False
            held = owner.get(cell)
            return held is None or held == value

        # BFS from src's neighbours to a cell adjacent to dst.
        prev: dict[int, int] = {}
        q = deque()
        for n in cgra.neighbors_out(src):
            if usable(n, e.src) and n not in prev:
                prev[n] = -1
                q.append(n)
        goal = None
        while q:
            cur = q.popleft()
            if cgra.has_link(cur, dst):
                goal = cur
                break
            for n in cgra.neighbors_out(cur):
                if usable(n, e.src) and n not in prev:
                    prev[n] = cur
                    q.append(n)
        if goal is None:
            return None
        chain: list[int] = []
        cur = goal
        while cur != -1:
            chain.append(cur)
            cur = prev[cur]
        chain.reverse()
        for cell in chain:
            owner[cell] = e.src
        routes[e] = [Step(cell, i, ROUTE) for i, cell in enumerate(chain)]
    return routes


def finalize(
    dfg: DFG, cgra: CGRA, binding: dict[int, int], mapper: str
) -> Mapping | None:
    """Route the binding and return a valid Mapping, or None."""
    routes = route_spatial(dfg, cgra, binding)
    if routes is None:
        return None
    mapping = Mapping(
        dfg,
        cgra,
        kind="spatial",
        binding=dict(binding),
        routes=routes,
        mapper=mapper,
    )
    if mapping.validate(raise_on_error=False):
        return None
    return mapping
