"""Shared machinery for spatial (binding-only) mappers.

A spatial mapping dedicates one cell per operation — FPGA-style fully
pipelined dataflow (§II-B "spatial computation").  What varies between
the spatial mappers is how the binding is chosen; routing is common: a
value crossing non-adjacent cells claims a chain of *free* cells as
dedicated routers, each carrying exactly one value for the whole
execution.

:func:`route_spatial` performs that routing (BFS per edge, longest
edges first, fan-out shares allowed); :func:`spatial_cost` is the
wirelength + congestion objective the meta-heuristics minimise;
:func:`finalize` bundles binding + routing into a validated
:class:`~repro.core.mapping.Mapping`.
"""

from __future__ import annotations

import heapq
import random
from collections import deque

from repro.arch.cgra import CGRA
from repro.arch.tec import ROUTE, Step
from repro.core.mapping import Mapping
from repro.ir.dfg import DFG, Edge
from repro.mappers.routecore import CellClaims, negotiate_spatial

__all__ = [
    "route_spatial",
    "route_spatial_partial",
    "route_negotiated",
    "spatial_cost",
    "incident_edges",
    "finalize",
    "random_binding",
    "candidate_cells",
]


def candidate_cells(dfg: DFG, cgra: CGRA, nid: int) -> list[int]:
    """Cells that can host ``nid`` (memoized per opcode on the CGRA)."""
    return list(cgra.supporting_cells(dfg.node(nid).op))


def random_binding(
    dfg: DFG, cgra: CGRA, rng: random.Random
) -> dict[int, int] | None:
    """A random injective binding respecting op support, or None."""
    binding: dict[int, int] = {}
    used: set[int] = set()
    nodes = [n.nid for n in dfg.nodes() if not n.op.is_pseudo]
    # Most-constrained ops first (fewest candidate cells).
    nodes.sort(key=lambda n: len(candidate_cells(dfg, cgra, n)))
    for nid in nodes:
        options = [c for c in candidate_cells(dfg, cgra, nid) if c not in used]
        if not options:
            return None
        cell = rng.choice(options)
        binding[nid] = cell
        used.add(cell)
    return binding


def _routable_edges(dfg: DFG) -> list[Edge]:
    return [
        e
        for e in dfg.edges()
        if not dfg.node(e.src).op.is_pseudo
        and not dfg.node(e.dst).op.is_pseudo
    ]


def spatial_cost(dfg: DFG, cgra: CGRA, binding: dict[int, int]) -> float:
    """Wirelength proxy: sum over edges of (hop distance - 1)+.

    Zero when every edge connects adjacent (or identical) cells — i.e.
    no route cells are needed at all.
    """
    total = 0.0
    for e in _routable_edges(dfg):
        src, dst = binding[e.src], binding[e.dst]
        if src == dst:
            continue
        total += max(0, cgra.distance(src, dst) - 1)
    return total


def incident_edges(dfg: DFG) -> dict[int, list[Edge]]:
    """Routable edges grouped by endpoint node.

    Lets a move-based search recompute only the cost terms its moved
    ops touch (the :func:`spatial_cost` summand is per-edge, so a move
    changes exactly the edges incident to the moved ops).
    """
    table: dict[int, list[Edge]] = {}
    for e in _routable_edges(dfg):
        table.setdefault(e.src, []).append(e)
        if e.dst != e.src:
            table.setdefault(e.dst, []).append(e)
    return table


def route_spatial_partial(
    dfg: DFG,
    cgra: CGRA,
    binding: dict[int, int],
    *,
    stop_on_fail: bool = False,
) -> tuple[dict[Edge, list[Step]], list[Edge]]:
    """Route what routes; report the edges that would not.

    Same algorithm and edge order as :func:`route_spatial`, but instead
    of bailing at the first unroutable edge it records that edge and
    keeps going, so a repair loop can learn *every* problem spot from
    one routing attempt (the clustered placer escalates those edges'
    weights and re-anneals).  ``stop_on_fail=True`` restores the
    bail-early behaviour for callers that only need a yes/no.
    """
    op_cells = set(binding.values())
    # Shared spatial-claims structure (repro.mappers.routecore): one
    # value per route cell, fan-out refcounted — the same bookkeeping
    # the negotiated engine uses, so cluster's repair loop and
    # negotiation agree on what "claimed" means.
    claims = CellClaims(cgra.n_cells)
    routes: dict[Edge, list[Step]] = {}
    failed: list[Edge] = []

    edges = _routable_edges(dfg)
    edges.sort(
        key=lambda e: -cgra.distance(binding[e.src], binding[e.dst])
    )
    for e in edges:
        src, dst = binding[e.src], binding[e.dst]
        if src == dst or cgra.has_link(src, dst):
            continue

        def usable(cell: int, value: int) -> bool:
            return cell not in op_cells and claims.exclusive(cell, value)

        # BFS from src's neighbours to a cell adjacent to dst.
        prev: dict[int, int] = {}
        q = deque()
        for n in cgra.neighbors_out(src):
            if usable(n, e.src) and n not in prev:
                prev[n] = -1
                q.append(n)
        goal = None
        while q:
            cur = q.popleft()
            if cgra.has_link(cur, dst):
                goal = cur
                break
            for n in cgra.neighbors_out(cur):
                if usable(n, e.src) and n not in prev:
                    prev[n] = cur
                    q.append(n)
        if goal is None:
            failed.append(e)
            if stop_on_fail:
                return routes, failed
            continue
        chain: list[int] = []
        cur = goal
        while cur != -1:
            chain.append(cur)
            cur = prev[cur]
        chain.reverse()
        claims.claim_path(chain, e.src)
        routes[e] = [Step(cell, i, ROUTE) for i, cell in enumerate(chain)]
    return routes, failed


def route_negotiated(
    dfg: DFG,
    cgra: CGRA,
    binding: dict[int, int],
    *,
    max_iters: int = 16,
    engine: str = "flat",
    incremental: bool = True,
) -> dict[Edge, list[Step]] | None:
    """PathFinder-style negotiated routing; None if it cannot converge.

    The greedy router (:func:`route_spatial_partial`) claims cells
    first-come-first-served, so a perfectly routable placement can
    still fail on ordering artifacts.  This router negotiates instead,
    with the classic rip-up-and-reroute loop: occupancy is persistent
    across iterations, each edge is ripped up and re-routed by
    Dijkstra against *everyone else's current path*, sharing a cell
    between different values is allowed but increasingly expensive
    (present congestion grows each iteration; cells that stay
    contested accumulate history cost).  Converged means no cell
    carries two values — the same legality :func:`route_spatial`
    enforces, including fan-out sharing within one value.

    ``engine="flat"`` (default) runs on the flat-array core
    (:func:`repro.mappers.routecore.negotiate_spatial`: CSR adjacency,
    Dial bucket queue, generation-stamped scratch); the body below is
    the scalar executable reference, byte-identical to the flat engine
    with ``incremental=False``.  ``incremental=True`` (flat engine
    only) re-routes, after the first iteration, only the nets whose
    current path crosses an overused cell — legality and convergence
    checks are unchanged, but intermediate routes may differ from the
    full re-route schedule (see DESIGN.md §13).
    """
    op_cells = set(binding.values())
    edges = [
        e
        for e in _routable_edges(dfg)
        if binding[e.src] != binding[e.dst]
        and not cgra.has_link(binding[e.src], binding[e.dst])
    ]
    if not edges:
        return {}
    edges.sort(
        key=lambda e: -cgra.distance(binding[e.src], binding[e.dst])
    )
    if engine == "flat":
        # The edge list is computed (and sorted) once, above, so both
        # engines negotiate the identical net list.
        return negotiate_spatial(
            cgra,
            binding,
            edges,
            max_iters=max_iters,
            incremental=incremental,
        )
    hist: dict[int, float] = {}
    paths: dict[Edge, list[int]] = {}
    # Persistent occupancy: cell -> value -> number of paths through.
    # Counts (not a set) so ripping up one edge of a fan-out does not
    # erase its sibling's claim on a shared cell.
    occ: dict[int, dict[int, int]] = {}

    def claim(path: list[int], value: int, add: bool) -> None:
        for c in path:
            counts = occ.setdefault(c, {})
            if add:
                counts[value] = counts.get(value, 0) + 1
            else:
                counts[value] -= 1
                if not counts[value]:
                    del counts[value]

    def dijkstra(
        src: int, dst: int, value: int, pressure: float
    ) -> list[int] | None:
        def enter_cost(cell: int) -> float | None:
            if cell in op_cells:
                return None
            counts = occ.get(cell)
            n_others = (
                sum(1 for v in counts if v != value) if counts else 0
            )
            return (
                1.0
                + hist.get(cell, 0.0)
                + pressure * n_others
            )

        dist: dict[int, float] = {}
        prev: dict[int, int] = {}
        heap: list[tuple[float, int, int]] = []
        for n in cgra.neighbors_out(src):
            c = enter_cost(n)
            if c is not None and n not in dist:
                dist[n] = c
                prev[n] = -1
                heapq.heappush(heap, (c, n, -1))
        while heap:
            d, cur, _ = heapq.heappop(heap)
            if d > dist.get(cur, float("inf")):
                continue
            if cgra.has_link(cur, dst):
                chain = [cur]
                while prev[chain[-1]] != -1:
                    chain.append(prev[chain[-1]])
                chain.reverse()
                return chain
            for n in cgra.neighbors_out(cur):
                c = enter_cost(n)
                if c is None:
                    continue
                nd = d + c
                if nd < dist.get(n, float("inf")):
                    dist[n] = nd
                    prev[n] = cur
                    heapq.heappush(heap, (nd, n, cur))
        return None

    for it in range(max_iters):
        pressure = 1.0 + 2.0 * it
        for e in edges:
            old = paths.get(e)
            if old is not None:
                claim(old, e.src, add=False)
            path = dijkstra(
                binding[e.src], binding[e.dst], e.src, pressure
            )
            if path is None:
                return None  # walled off: no path at any price
            paths[e] = path
            claim(path, e.src, add=True)
        over = [c for c, counts in occ.items() if len(counts) > 1]
        if not over:
            return {
                e: [Step(c, i, ROUTE) for i, c in enumerate(p)]
                for e, p in paths.items()
            }
        for c in over:
            hist[c] = hist.get(c, 0.0) + float(len(occ[c]) - 1)
    return None


def route_spatial(
    dfg: DFG, cgra: CGRA, binding: dict[int, int]
) -> dict[Edge, list[Step]] | None:
    """Claim route cells for every non-adjacent edge; None on failure.

    Route cells must be free of operations and carry one value each;
    edges of the same value may share cells (fan-out).  Edges are
    routed longest-first (hardest first), each by BFS over usable
    cells.
    """
    routes, failed = route_spatial_partial(
        dfg, cgra, binding, stop_on_fail=True
    )
    return None if failed else routes


def finalize(
    dfg: DFG, cgra: CGRA, binding: dict[int, int], mapper: str
) -> Mapping | None:
    """Route the binding and return a valid Mapping, or None."""
    routes = route_spatial(dfg, cgra, binding)
    if routes is None:
        return None
    mapping = Mapping(
        dfg,
        cgra,
        kind="spatial",
        binding=dict(binding),
        routes=routes,
        mapper=mapper,
    )
    if mapping.validate(raise_on_error=False):
        return None
    return mapping
