"""Portfolio mapper — race several mappers, keep the winner.

Twenty years of mapping methods (the survey's Table I) left no single
dominant technique: constructive heuristics are fast but brittle,
annealers robust but slow, and which one lands the best II depends on
the kernel.  The standard systems answer is an *algorithm portfolio*:
run several entrants on the same problem and keep the first (or best)
valid result.  With :mod:`repro.parallel` the entrants race on real
cores; losers are cancelled once a winner is decided.

Determinism: the winner is chosen by *entrant order*, not completion
order — policy ``"first"`` takes the lowest-index entrant that
produced a valid mapping, policy ``"best"`` waits for everyone and
takes the lowest II (ties broken by entrant order).  The portfolio
therefore returns the same mapping for a fixed seed whether it runs
serially or in parallel.
"""

from __future__ import annotations

import logging
import os

from repro.arch.cgra import CGRA
from repro.cache import get_cache
from repro.core.exceptions import MapFailure
from repro.core.mapper import Mapper, MapperInfo
from repro.core.mapping import Mapping
from repro.core.registry import create, register
from repro.ir.dfg import DFG
from repro.obs.tracer import get_tracer, tracing
from repro.parallel import (
    PMapResult,
    TaskTimeout,
    in_worker,
    pmap,
    race,
    time_limit,
)

__all__ = ["PortfolioMapper"]

_log = logging.getLogger("repro.mappers.portfolio")

#: Default entrants: a fast constructive heuristic, a routing-aware
#: constructive method, and two meta-heuristics with different search
#: shapes — cheap insurance against any single method's blind spots.
DEFAULT_ENTRANTS = ("list_sched", "edge_centric", "spr", "dresc")


def _entrant_task(shared: tuple, payload: tuple) -> Mapping:
    """One entrant's full mapping run (module-level for pickling).

    The problem ``(dfg, cgra)`` is race-constant and ships once per
    batch as the ``shared`` value; the payload is just the entrant's
    identity.
    """
    dfg, cgra = shared
    mname, seed, ii, trace = payload
    if not trace:
        return create(mname, seed=seed).map(dfg, cgra, ii=ii)
    with tracing():
        return create(mname, seed=seed).map(dfg, cgra, ii=ii)


@register
class PortfolioMapper(Mapper):
    """Race a set of registered mappers; first/best valid mapping wins."""

    info = MapperInfo(
        name="portfolio",
        family="metaheuristic",
        subfamily="portfolio",
        kinds=("temporal",),
        solves="binding+scheduling",
        modeled_after="§VI (no single dominant method)",
        year=2022,
    )

    def __init__(
        self,
        seed: int = 0,
        *,
        mappers: tuple[str, ...] | None = None,
        policy: str = "first",
        jobs: int = 0,
        timeout: float | None = None,
    ) -> None:
        """Args:
            mappers: entrant registry names, in priority order.
            policy: ``"first"`` — lowest-priority-index valid mapping
                wins, losers are cancelled; ``"best"`` — all entrants
                finish, lowest II wins (ties by priority order).
            jobs: worker processes; 0 = one per entrant (capped at the
                core count), 1 = run entrants serially in-process.
            timeout: per-entrant wall-clock budget in seconds.
        """
        super().__init__(seed)
        if policy not in ("first", "best"):
            raise ValueError(f"bad portfolio policy {policy!r}")
        self.mappers = tuple(mappers) if mappers else DEFAULT_ENTRANTS
        self.policy = policy
        self.jobs = jobs
        self.timeout = timeout

    def cache_token(self) -> str:
        return (
            f"entrants={','.join(self.mappers)};policy={self.policy}"
            f";timeout={self.timeout}"
        )

    # ------------------------------------------------------------------
    def _seed_cache(
        self, dfg: DFG, cgra: CGRA, ii: int | None, winner: Mapping
    ) -> None:
        """Store the winner under its *entrant's* key too.

        A later direct call to the winning mapper (a re-run, a
        narrowed sweep) then hits immediately — the race's result
        seeds the cache for every round after the first.  Matters in
        the parallel path, where the entrant ran in a forked worker
        whose in-memory store died with it.
        """
        cache = get_cache()
        if cache is None or winner.mapper not in self.mappers:
            return
        entrant = create(winner.mapper, seed=self.seed)
        cache.put(
            cache.key(
                dfg, cgra, mapper=winner.mapper, seed=self.seed,
                ii=ii, token=entrant.cache_token(),
            ),
            winner,
        )

    # ------------------------------------------------------------------
    def _effective_jobs(self) -> int:
        if self.jobs > 0:
            return self.jobs
        return min(len(self.mappers), os.cpu_count() or 1)

    def _pick_best(
        self, finished: list[tuple[int, Mapping]]
    ) -> Mapping | None:
        if not finished:
            return None
        return min(
            finished, key=lambda t: (t[1].ii or 10**9, t[0])
        )[1]

    def _map_serial(
        self, dfg: DFG, cgra: CGRA, ii: int | None
    ) -> Mapping:
        """Entrants in priority order, in-process, under the caller's
        tracer (spans nest naturally)."""
        tracer = get_tracer()
        finished: list[tuple[int, Mapping]] = []
        best_ii: int | None = None
        for idx, mname in enumerate(self.mappers):
            # Construction stays off the clock — the entrant's budget
            # covers its mapping run, not the registry's lazy imports.
            entrant = create(mname, seed=self.seed)
            try:
                with time_limit(self.timeout):
                    mapping = entrant.map(dfg, cgra, ii=ii)
            except (MapFailure, TaskTimeout) as ex:
                _log.debug("portfolio: %s lost: %s", mname, ex)
                continue
            if mapping.ii is not None and (
                best_ii is None or mapping.ii < best_ii
            ):
                best_ii = mapping.ii
                tracer.progress("portfolio.best_ii", best_ii)
            if self.policy == "first":
                tracer.tag(winner=mname)
                return mapping
            finished.append((idx, mapping))
        best = self._pick_best(finished)
        if best is None:
            raise self.fail(
                f"all {len(self.mappers)} entrants failed on {dfg.name}",
                attempts=len(self.mappers),
            )
        get_tracer().tag(winner=best.mapper)
        self._seed_cache(dfg, cgra, ii, best)
        return best

    def _map(self, dfg: DFG, cgra: CGRA, ii: int | None) -> Mapping:
        jobs = self._effective_jobs()
        if jobs <= 1 or in_worker():
            return self._map_serial(dfg, cgra, ii)

        tracer = get_tracer()
        shared = (dfg, cgra)
        tasks = [
            (mname, self.seed, ii, tracer.enabled)
            for mname in self.mappers
        ]
        if self.policy == "first":
            results = race(
                _entrant_task, tasks, jobs=jobs,
                timeout=self.timeout, shared=shared,
            )
        else:
            results = pmap(
                _entrant_task, tasks, jobs=jobs,
                timeout=self.timeout, shared=shared,
            )
        finished = [
            (i, r.value)
            for i, r in enumerate(results)
            if isinstance(r, PMapResult) and r.ok
        ]
        for i, r in enumerate(results):
            if isinstance(r, PMapResult) and not r.ok:
                if not r.timed_out and not isinstance(
                    r.error, MapFailure
                ):
                    raise r.error  # a bug, not a lost race
                _log.debug(
                    "portfolio: %s lost: %s", self.mappers[i], r.error
                )
        winner = (
            finished[0][1] if self.policy == "first" and finished
            else self._pick_best(finished)
        )
        if winner is None:
            raise self.fail(
                f"all {len(self.mappers)} entrants failed on {dfg.name}",
                attempts=len(self.mappers),
            )
        # Graft the winner's worker-side trace under our root span so
        # --profile sees inside the child process.
        if winner.ii is not None:
            tracer.progress("portfolio.best_ii", winner.ii)
        if tracer.enabled:
            tracer.tag(winner=winner.mapper)
            if winner.trace is not None and tracer.current is not None:
                tracer.current.children.append(winner.trace)
        self._seed_cache(dfg, cgra, ii, winner)
        return winner
