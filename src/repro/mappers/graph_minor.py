"""Graph-minor mapper (Chen & Mitra style).

Chen & Mitra [27] search for the DFG as a *graph minor* of the
(modulo) time-extended CGRA: candidate slot sets per operation are
pruned by arc consistency over the edges, the most-constrained
operation is embedded first, and the search backtracks on wipe-out.
The survey notes that, for CGRA mapping, all the graph-based methods
are heuristics in practice — accordingly this mapper bounds its
backtracking and falls back to failure rather than exhausting the
space (the exhaustive version is :mod:`repro.mappers.bnb_mapper`).
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.core.mapper import Mapper, MapperInfo
from repro.core.mapping import Mapping
from repro.core.registry import register
from repro.ir.dfg import DFG
from repro.mappers import adjplace
from repro.mappers.regraph import split_dist0_edges

__all__ = ["GraphMinorMapper"]


@register
class GraphMinorMapper(Mapper):
    """Arc-consistent slot embedding with bounded backtracking."""

    info = MapperInfo(
        name="graph_minor",
        family="heuristic",
        subfamily="graph minor",
        kinds=("temporal",),
        solves="binding+scheduling",
        modeled_after="[27]",
        year=2014,
    )

    def __init__(
        self, seed: int = 0, *, max_backtracks: int = 2000,
        max_route_rounds: int = 2,
    ) -> None:
        super().__init__(seed)
        self.max_backtracks = max_backtracks
        self.max_route_rounds = max_route_rounds

    # ------------------------------------------------------------------
    def _search(
        self, dfg: DFG, cgra: CGRA, ii: int
    ) -> dict[int, adjplace.Slot] | None:
        domains = adjplace.slot_domains(dfg, cgra, ii)
        edges = adjplace.real_edges(dfg)
        lat = {
            nid: dfg.node(nid).op.latency for nid in domains
        }
        by_node: dict[int, list] = {n: [] for n in domains}
        for e in edges:
            by_node[e.src].append(e)
            by_node[e.dst].append(e)

        def revise(doms) -> bool:
            """One pass of arc consistency; False on wipe-out."""
            changed = True
            while changed:
                changed = False
                for e in edges:
                    keep_u = [
                        su
                        for su in doms[e.src]
                        if any(
                            adjplace.compatible(
                                cgra, ii, e, lat[e.src], su, sv
                            )
                            for sv in doms[e.dst]
                        )
                    ]
                    if len(keep_u) != len(doms[e.src]):
                        doms[e.src] = keep_u
                        changed = True
                        if not keep_u:
                            return False
                    keep_v = [
                        sv
                        for sv in doms[e.dst]
                        if any(
                            adjplace.compatible(
                                cgra, ii, e, lat[e.src], su, sv
                            )
                            for su in doms[e.src]
                        )
                    ]
                    if len(keep_v) != len(doms[e.dst]):
                        doms[e.dst] = keep_v
                        changed = True
                        if not keep_v:
                            return False
            return True

        doms = {n: list(d) for n, d in domains.items()}
        if not revise(doms):
            return None

        assign: dict[int, adjplace.Slot] = {}
        budget = [self.max_backtracks]

        def slot_free(nid: int, slot: adjplace.Slot) -> bool:
            c, t = slot
            return all(
                not (s[0] == c and s[1] % ii == t % ii)
                for s in assign.values()
            )

        def ok_with_assigned(nid: int, slot: adjplace.Slot) -> bool:
            for e in by_node[nid]:
                other = e.dst if e.src == nid else e.src
                if other not in assign:
                    continue
                su = slot if e.src == nid else assign[e.src]
                sv = assign[e.dst] if e.src == nid else slot
                if not adjplace.compatible(cgra, ii, e, lat[e.src], su, sv):
                    return False
            return True

        def backtrack() -> bool:
            if len(assign) == len(doms):
                return True
            nid = min(
                (n for n in doms if n not in assign),
                key=lambda n: len(doms[n]),
            )
            for slot in doms[nid]:
                if not slot_free(nid, slot):
                    continue
                if not ok_with_assigned(nid, slot):
                    continue
                assign[nid] = slot
                if backtrack():
                    return True
                del assign[nid]
                budget[0] -= 1
                if budget[0] <= 0:
                    return False
            return False

        return dict(assign) if backtrack() else None

    def _map(self, dfg: DFG, cgra: CGRA, ii: int | None) -> Mapping:
        attempts = 0
        for ii_try in self.ii_range(dfg, cgra, ii):
            for rounds in range(self.max_route_rounds + 1):
                attempts += 1
                work = (
                    dfg if rounds == 0 else split_dist0_edges(dfg, rounds)
                )
                assign = self._search(work, cgra, ii_try)
                if assign is None:
                    continue
                mapping = adjplace.build_mapping(
                    work, cgra, ii_try, assign, self.info.name
                )
                if not mapping.validate(raise_on_error=False):
                    return mapping
        raise self.fail(
            f"no minor embedding found on {cgra.name}", attempts=attempts
        )
