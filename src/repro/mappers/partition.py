"""Recursive min-cut DFG partitioning (Fiduccia–Mattheyses-style).

The clustered placer's first phase: carve the application graph into
connectivity-dense clusters small enough to sit inside one fabric
region.  The partitioner is the classic recipe — recursive balanced
bisection, each cut refined by Fiduccia–Mattheyses passes (move one
node at a time across the cut, greedily by gain, keep the best prefix
of the move sequence) — kept deliberately simple: pure python, integer
weights, deterministic for a fixed input.

Edges here are *undirected connectivity weights* between compute
nodes: the number of routable DFG edges joining the pair.  Minimising
the cut therefore minimises exactly the values that would have to
cross between fabric regions after placement — the term the detailed
refinement annealer then pays for in wirelength.

Recursion order is meaningful: :func:`partition` returns the clusters
in left-to-right recursion order, which is a linear arrangement of the
bisection tree — consecutive clusters in the returned list are
connectivity-close, so a snake walk over fabric regions is already a
good global seed.
"""

from __future__ import annotations

from repro.ir.dfg import DFG

__all__ = ["build_adjacency", "bisect_nodes", "partition"]

#: FM refinement passes per bisection (each pass is one full sweep of
#: tentative moves; passes stop early once a sweep finds no gain).
_FM_PASSES = 4


def build_adjacency(dfg: DFG) -> dict[int, dict[int, int]]:
    """Undirected connectivity weights between non-pseudo nodes.

    ``adj[u][v]`` counts the routable DFG edges joining ``u`` and
    ``v`` (either direction; self edges are ignored — they never cross
    a cut).
    """
    adj: dict[int, dict[int, int]] = {
        n.nid: {} for n in dfg.nodes() if not n.op.is_pseudo
    }
    for e in dfg.edges():
        if e.src == e.dst or e.src not in adj or e.dst not in adj:
            continue
        adj[e.src][e.dst] = adj[e.src].get(e.dst, 0) + 1
        adj[e.dst][e.src] = adj[e.dst].get(e.src, 0) + 1
    return adj


def _seed_split(
    nodes: list[int], adj: dict[int, dict[int, int]]
) -> tuple[set[int], set[int]]:
    """Initial halves: BFS-grow one side from a peripheral node.

    Growing from a minimum-degree node keeps the seed cut small for
    chain- and grid-like graphs; the FM passes do the rest.  Degrees
    are counted within the *induced* subgraph — a sub-segment's true
    periphery, not the full graph's — so recursion keeps growing each
    left half from the low end of its segment and the concatenated
    cluster order stays a linear arrangement.  Fully deterministic:
    ties break on node id, neighbours are visited heaviest-link first.
    """
    member = set(nodes)
    target = len(nodes) - len(nodes) // 2  # left gets the ceil half
    left: set[int] = set()

    def induced_degree(nid: int) -> int:
        return sum(w for u, w in adj[nid].items() if u in member)

    pending = sorted(nodes, key=lambda n: (induced_degree(n), n))
    frontier: list[int] = []
    while len(left) < target:
        if not frontier:
            start = next(n for n in pending if n not in left)
            left.add(start)
            frontier.append(start)
            if len(left) >= target:
                break
        cur = frontier.pop(0)
        for nbr, _w in sorted(
            adj[cur].items(), key=lambda kv: (-kv[1], kv[0])
        ):
            if nbr in member and nbr not in left:
                left.add(nbr)
                frontier.append(nbr)
                if len(left) >= target:
                    break
    return left, member - left


def _fm_pass(
    nodes: list[int],
    adj: dict[int, dict[int, int]],
    side: dict[int, bool],
    min_side: int,
) -> int:
    """One FM sweep; mutates ``side`` to the best prefix, returns gain.

    Every node is tentatively moved once (greedily by gain, balance
    permitting); the sweep then rolls back to the prefix with the best
    cumulative cut improvement.  Returns that improvement (>= 0).
    """

    def gain(v: int) -> int:
        g = 0
        sv = side[v]
        for u, w in adj[v].items():
            if u in side:
                g += w if side[u] != sv else -w
        return g

    sizes = [0, 0]
    for v in nodes:
        sizes[side[v]] += 1
    locked: set[int] = set()
    gains = {v: gain(v) for v in nodes}
    history: list[int] = []
    cumulative = 0
    best_gain, best_len = 0, 0
    while len(locked) < len(nodes):
        best_v = None
        for v in nodes:
            if v in locked or sizes[side[v]] - 1 < min_side:
                continue
            if best_v is None or (gains[v], -v) > (gains[best_v], -best_v):
                best_v = v
        if best_v is None:
            break
        sv = side[best_v]
        sizes[sv] -= 1
        sizes[not sv] += 1
        side[best_v] = not sv
        locked.add(best_v)
        cumulative += gains[best_v]
        history.append(best_v)
        for u in adj[best_v]:
            if u in side and u not in locked:
                gains[u] = gain(u)
        if cumulative > best_gain:
            best_gain, best_len = cumulative, len(history)
    for v in history[best_len:]:  # roll back past the best prefix
        side[v] = not side[v]
    return best_gain


def bisect_nodes(
    nodes: list[int], adj: dict[int, dict[int, int]]
) -> tuple[list[int], list[int]]:
    """Split ``nodes`` into two balanced halves with a small cut."""
    if len(nodes) < 2:
        return list(nodes), []
    left, right = _seed_split(nodes, adj)
    side = {v: False for v in left}
    side.update({v: True for v in right})
    n = len(nodes)
    min_side = max(1, n // 2 - max(1, n // 8))
    for _ in range(_FM_PASSES):
        if _fm_pass(nodes, adj, side, min_side) <= 0:
            break
    out_left = sorted(v for v in nodes if not side[v])
    out_right = sorted(v for v in nodes if side[v])
    return out_left, out_right


def partition(
    dfg: DFG,
    capacity: int,
    *,
    adj: dict[int, dict[int, int]] | None = None,
) -> list[list[int]]:
    """Cluster the compute nodes into groups of at most ``capacity``.

    Returned in bisection-tree order (see module docstring); every
    non-pseudo node appears in exactly one cluster.
    """
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    if adj is None:
        adj = build_adjacency(dfg)
    out: list[list[int]] = []

    def recurse(nodes: list[int]) -> None:
        if len(nodes) <= capacity:
            if nodes:
                out.append(nodes)
            return
        left, right = bisect_nodes(nodes, adj)
        if not left or not right:  # degenerate split: hard-halve
            mid = len(nodes) // 2
            left, right = nodes[:mid], nodes[mid:]
        recurse(left)
        recurse(right)

    recurse(sorted(adj))
    return out
