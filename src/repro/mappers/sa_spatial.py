"""Simulated-annealing spatial mapper.

The binding discipline of the recent spatial-dataflow generators
(DSAGEN [32], SNAFU [33]): start from a random injective binding,
propose moves (relocate an op to a free cell, or swap two ops), accept
by the Metropolis criterion on the wirelength objective, cool
geometrically, and route at the end (with a few restarts).
"""

from __future__ import annotations

import logging
import math
import random

from repro.arch.cgra import CGRA
from repro.core.mapper import Mapper, MapperInfo
from repro.core.mapping import Mapping
from repro.core.registry import register
from repro.ir.dfg import DFG
from repro.mappers.spatial_common import (
    candidate_cells,
    finalize,
    incident_edges,
    random_binding,
    spatial_cost,
)
from repro.obs.tracer import (
    BACKTRACKS,
    CANDIDATES_EXPLORED,
    ROUTING_ATTEMPTS,
    get_tracer,
)

__all__ = ["SimulatedAnnealingSpatialMapper"]

_log = logging.getLogger("repro.mappers.sa_spatial")


@register
class SimulatedAnnealingSpatialMapper(Mapper):
    """SA over injective bindings, wirelength objective."""

    info = MapperInfo(
        name="sa_spatial",
        family="metaheuristic",
        subfamily="SA",
        kinds=("spatial",),
        solves="binding",
        modeled_after="[32], [33]",
        year=2020,
    )

    def __init__(
        self,
        seed: int = 0,
        *,
        t_start: float = 4.0,
        t_end: float = 0.05,
        cooling: float = 0.92,
        moves_per_temp: int = 60,
        restarts: int = 4,
    ) -> None:
        super().__init__(seed)
        self.t_start = t_start
        self.t_end = t_end
        self.cooling = cooling
        self.moves_per_temp = moves_per_temp
        self.restarts = restarts

    def _anneal(
        self, dfg: DFG, cgra: CGRA, rng: random.Random
    ) -> dict[int, int] | None:
        tracer = get_tracer()
        binding = random_binding(dfg, cgra, rng)
        if binding is None:
            return None
        nodes = list(binding)
        cost = spatial_cost(dfg, cgra, binding)
        # Delta evaluation: a move changes only the cost terms of the
        # edges incident to the moved ops, and the occupied-cell set is
        # maintained across moves instead of being rebuilt per move.
        inc = incident_edges(dfg)
        dist = cgra.distance

        def local_cost(moved: tuple[int, ...]) -> float:
            seen: set = set()
            total = 0.0
            for n in moved:
                for e in inc.get(n, ()):
                    if e in seen:
                        continue
                    seen.add(e)
                    src, dst = binding[e.src], binding[e.dst]
                    if src != dst:
                        total += max(0, dist(src, dst) - 1)
            return total

        used = set(binding.values())
        best = cost
        tracer.progress("sa_spatial.best_cost", best)
        temp = self.t_start
        while temp > self.t_end:
            for _ in range(self.moves_per_temp):
                tracer.count(CANDIDATES_EXPLORED)
                nid = rng.choice(nodes)
                old_cell = binding[nid]
                options = candidate_cells(dfg, cgra, nid)
                target = rng.choice(options)
                swap_with = None
                if target in used and target != old_cell:
                    # Swap if the resident op may live on our old cell.
                    swap_with = next(
                        n for n, c in binding.items() if c == target
                    )
                    if old_cell not in candidate_cells(dfg, cgra, swap_with):
                        continue
                moved = (nid,) if swap_with is None else (nid, swap_with)
                before = local_cost(moved)
                if swap_with is not None:
                    binding[swap_with] = old_cell
                binding[nid] = target
                delta = local_cost(moved) - before
                if delta <= 0 or rng.random() < math.exp(-delta / temp):
                    cost += delta
                    if swap_with is None:
                        used.discard(old_cell)
                        used.add(target)
                    if cost < best:
                        best = cost
                        tracer.progress("sa_spatial.best_cost", best)
                else:  # revert
                    tracer.count(BACKTRACKS)
                    binding[nid] = old_cell
                    if swap_with is not None:
                        binding[swap_with] = target
            temp *= self.cooling
        return binding

    def _map(self, dfg: DFG, cgra: CGRA, ii: int | None) -> Mapping:
        tracer = get_tracer()
        rng = random.Random(self.seed)
        attempts = 0
        for r in range(self.restarts):
            attempts += 1
            with tracer.span("restart", n=r):
                binding = self._anneal(dfg, cgra, rng)
                if binding is None:
                    raise self.fail(
                        f"{dfg.name} does not fit spatially on {cgra.name}",
                        attempts=attempts,
                    )
                tracer.count(ROUTING_ATTEMPTS)
                mapping = finalize(dfg, cgra, binding, self.info.name)
            if mapping is not None:
                return mapping
            _log.warning(
                "sa_spatial: routing failed on restart %d/%d, retrying",
                r + 1, self.restarts,
            )
        raise self.fail(
            f"routing failed after {self.restarts} annealing restarts",
            attempts=attempts,
        )
