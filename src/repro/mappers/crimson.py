"""CRIMSON-style randomised iterative modulo scheduling.

Balasubramanian & Shrivastava [52] showed that *randomising the
scheduling order* and restarting beats careful priority functions on
hard instances: a deterministic order fails the same way every time,
while random restarts explore qualitatively different schedules at the
same II before paying for a larger one.
"""

from __future__ import annotations

import random

from repro.arch.cgra import CGRA
from repro.core.mapper import Mapper, MapperInfo
from repro.core.mapping import Mapping
from repro.core.registry import register
from repro.ir.dfg import DFG
from repro.mappers.construct import greedy_construct
from repro.mappers.schedule import priority_order

__all__ = ["CrimsonMapper"]


@register
class CrimsonMapper(Mapper):
    """Random-priority restarts at each II before escalating."""

    info = MapperInfo(
        name="crimson",
        family="heuristic",
        subfamily="randomised MS",
        kinds=("temporal",),
        solves="scheduling",
        modeled_after="[52]",
        year=2020,
    )

    def __init__(self, seed: int = 0, *, restarts: int = 8) -> None:
        super().__init__(seed)
        self.restarts = restarts

    @staticmethod
    def _random_topo_order(
        dfg: DFG, rng: random.Random
    ) -> list[int]:
        """A random linear extension of the dist-0 partial order."""
        indeg = {nid: 0 for nid in dfg}
        for e in dfg.edges():
            if e.dist == 0:
                indeg[e.dst] += 1
        ready = [n for n, d in indeg.items() if d == 0]
        order = []
        while ready:
            nid = ready.pop(rng.randrange(len(ready)))
            if not dfg.node(nid).op.is_pseudo:
                order.append(nid)
            for e in dfg.out_edges(nid):
                if e.dist == 0:
                    indeg[e.dst] -= 1
                    if indeg[e.dst] == 0:
                        ready.append(e.dst)
        return order

    def _map(self, dfg: DFG, cgra: CGRA, ii: int | None) -> Mapping:
        rng = random.Random(self.seed)
        attempts = 0
        for ii_try in self.ii_range(dfg, cgra, ii):
            for r in range(self.restarts):
                attempts += 1
                if r == 0:
                    order = priority_order(dfg, by="height")
                else:
                    order = self._random_topo_order(dfg, rng)
                mapping = greedy_construct(
                    dfg, cgra, ii_try, order, rng=rng
                )
                if mapping is not None and not mapping.validate(
                    raise_on_error=False
                ):
                    return mapping
        raise self.fail(
            f"no feasible II after randomised restarts on {cgra.name}",
            attempts=attempts,
        )
