"""Branch-and-bound mapper.

The exhaustive counterpart of :mod:`repro.mappers.graph_minor` — a
DNestMap-style [42] depth-first search over the adjacency-placement
model that (a) explores the whole slot space for the given II and
window, so a negative answer *proves* infeasibility within the model,
and (b) keeps searching after the first solution, bounding on makespan
to return a schedule-length-optimal mapping.
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.core.mapper import Mapper, MapperInfo
from repro.core.mapping import Mapping
from repro.core.registry import register
from repro.ir.dfg import DFG
from repro.mappers import adjplace
from repro.mappers.regraph import split_dist0_edges
from repro.obs.tracer import (
    BACKTRACKS,
    CANDIDATES_EXPLORED,
    SOLVER_NODES,
    get_tracer,
)

__all__ = ["BranchAndBoundMapper"]


@register
class BranchAndBoundMapper(Mapper):
    """Exhaustive DFS with makespan bounding (exact in-model)."""

    info = MapperInfo(
        name="bnb",
        family="exact",
        subfamily="B&B",
        kinds=("temporal",),
        solves="binding+scheduling",
        modeled_after="[42]",
        year=2018,
        exact=True,
    )

    def __init__(
        self,
        seed: int = 0,
        *,
        node_limit: int = 200_000,
        max_route_rounds: int = 1,
        window: int | None = None,
    ) -> None:
        super().__init__(seed)
        self.node_limit = node_limit
        self.max_route_rounds = max_route_rounds
        self.window = window

    def _solve(
        self, dfg: DFG, cgra: CGRA, ii: int
    ) -> dict[int, adjplace.Slot] | None:
        tracer = get_tracer()
        domains = adjplace.slot_domains(
            dfg, cgra, ii, window=self.window
        )
        edges = adjplace.real_edges(dfg)
        lat = {nid: dfg.node(nid).op.latency for nid in domains}
        by_node: dict[int, list] = {n: [] for n in domains}
        for e in edges:
            by_node[e.src].append(e)
            by_node[e.dst].append(e)

        order = sorted(domains, key=lambda n: len(domains[n]))
        best: dict[int, adjplace.Slot] | None = None
        best_makespan = [float("inf")]
        nodes_seen = [0]

        assign: dict[int, adjplace.Slot] = {}
        used: set[tuple[int, int]] = set()  # (cell, slot mod ii)

        def feasible(nid: int, slot: adjplace.Slot) -> bool:
            for e in by_node[nid]:
                other = e.dst if e.src == nid else e.src
                if other not in assign:
                    continue
                su = slot if e.src == nid else assign[e.src]
                sv = assign[e.dst] if e.src == nid else slot
                if not adjplace.compatible(cgra, ii, e, lat[e.src], su, sv):
                    return False
            return True

        def dfs(idx: int, makespan: int) -> None:
            nonlocal best
            nodes_seen[0] += 1
            if nodes_seen[0] > self.node_limit:
                return
            if makespan >= best_makespan[0]:
                return  # bound: cannot improve the incumbent
            if idx == len(order):
                best = dict(assign)
                best_makespan[0] = makespan
                return
            nid = order[idx]
            for slot in domains[nid]:
                tracer.count(CANDIDATES_EXPLORED)
                key = (slot[0], slot[1] % ii)
                if key in used:
                    continue
                if not feasible(nid, slot):
                    continue
                assign[nid] = slot
                used.add(key)
                dfs(idx + 1, max(makespan, slot[1] + 1))
                tracer.count(BACKTRACKS)
                del assign[nid]
                used.discard(key)

        with tracer.span(
            "bnb_search", ii=ii,
            slots=sum(len(d) for d in domains.values()),
        ) as span:
            dfs(0, 0)
            span.count(SOLVER_NODES, nodes_seen[0])
            span.tag(found=best is not None)
        return best

    def _map(self, dfg: DFG, cgra: CGRA, ii: int | None) -> Mapping:
        attempts = 0
        for ii_try in self.ii_range(dfg, cgra, ii):
            for rounds in range(self.max_route_rounds + 1):
                attempts += 1
                work = (
                    dfg if rounds == 0 else split_dist0_edges(dfg, rounds)
                )
                assign = self._solve(work, cgra, ii_try)
                if assign is None:
                    continue
                mapping = adjplace.build_mapping(
                    work, cgra, ii_try, assign, self.info.name
                )
                if not mapping.validate(raise_on_error=False):
                    return mapping
        raise self.fail(
            f"search space exhausted on {cgra.name}", attempts=attempts
        )
