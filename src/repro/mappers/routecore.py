"""Flat-array routing engine: CSR graph + bucket-queue search.

Routing is the load-bearing half of spatial mapping — "use an existing
link without interfering with already existing communications" (§II-B)
— and at 32x32+ fabric sizes the dict-of-tuples + heapq searches in
:mod:`repro.mappers.routing` and :func:`repro.mappers.spatial_common
.route_negotiated` dominate the mapping wall-clock.  This module is
the shared fast core both hot paths run on:

* :class:`FlatGraph` — one per *topology*: CSR adjacency (out/in
  neighbour lists as flat index arrays), the dense link id of every
  CSR entry (so link occupancy checks never hash a ``(src, dst)``
  tuple), per-cell RF sizes, and the all-pairs distance rows shared
  with :meth:`repro.arch.cgra.CGRA.distance_table`.  Cached by arch
  fingerprint in a bounded LRU exactly like the distance tables, and
  memoized per CGRA instance (:meth:`repro.arch.cgra.CGRA.flat_graph`).

* :class:`DialQueue` — a Dial (bucket) priority queue for the
  integer-cost regimes every congestion search here lives in (unit
  base cost + integral history + integral pressure).  Buckets are
  keyed by integer priority and hold min-heaps of tie-break payloads,
  so the pop order is *provably identical* to ``heapq`` over
  ``(priority, payload)`` tuples whenever pushes are monotone (never
  below the bucket currently being drained) — the property test in
  ``tests/mappers/test_routecore.py`` drills exactly this.  Routing
  costs here are ``>= 1`` per step, so monotonicity always holds.

* :class:`CellClaims` — the one cell -> value -> path-refcount
  structure for spatial routing occupancy.  Previously
  ``spatial_common.claim()`` (negotiation) and the greedy router that
  cluster's route-repair loop drives kept parallel private maps; both
  now share this class.  It maintains the *overused* cell set
  incrementally, which is what makes incremental rip-up cheap.

* :func:`negotiate_spatial` — the flat engine behind
  :func:`repro.mappers.spatial_common.route_negotiated`.  With
  ``incremental=False`` it replays the scalar reference byte for byte
  (same Dijkstra pop order, same paths, same convergence trace — the
  equivalence suite holds it to that).  With ``incremental=True``
  (the default via ``route_negotiated(engine="flat")``), iterations
  after the first rip up and re-route *only* the nets whose current
  paths cross an overused cell, instead of every edge every round.
  The rip-up invariant: congestion can only be *caused* by a path
  through an overused cell, so re-routing exactly those nets preserves
  the algorithm's legality guarantee — convergence is still judged by
  the global overuse check — while skipping the (large) settled
  majority.  Clean nets keep their current path even when a cell they
  detoured around has since freed up, so intermediate routes (not the
  legality of the result) may differ from the full re-route; DESIGN.md
  §13 documents the trade.

* :class:`FlatTemporalEngine` — flat-array searches behind
  :class:`repro.mappers.routing.Router`'s ``engine="flat"``: the
  layered BFS of :meth:`~repro.mappers.routing.Router.find` over
  generation-stamped state arrays, and the A* of
  :meth:`~repro.mappers.routing.Router.find_negotiated` with states
  ``(cell, kind, layer)`` encoded as flat indices into preallocated
  ``dist``/``prev`` arrays (reset by generation stamp, never
  reallocated), driven by a :class:`DialQueue` when the cost regime is
  integral and falling back to ``heapq`` (still over flat arrays)
  when a caller passes fractional penalties.  State indices are
  monotone in the scalar ``(cell, kind, layer)`` tuple order
  (``"hold" < "route"``), so tie-breaking — and therefore every path
  — is byte-identical to the scalar searches.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.arch.tec import HOLD, ROUTE, Step

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.cgra import CGRA
    from repro.ir.dfg import Edge

__all__ = [
    "CellClaims",
    "DialQueue",
    "FlatGraph",
    "FlatTemporalEngine",
    "flat_graph",
    "negotiate_spatial",
]

_INF = 10**9

#: FlatGraphs shared across equal arrays, keyed by arch fingerprint —
#: the same discipline (and bound) as the distance-table LRU in
#: :mod:`repro.arch.cgra`; preset factories build fresh CGRA instances
#: per call and must not pay the CSR build each time.
_FLAT_GRAPHS: "OrderedDict[str, FlatGraph]" = OrderedDict()
_FLAT_GRAPHS_MAX = 32


class FlatGraph:
    """CSR adjacency, dense link ids and distance rows for one topology.

    All index arrays are flat python lists of ints — the fastest
    scalar-indexed storage CPython has — laid out CSR style:
    ``out_nbr[out_ptr[c]:out_ptr[c+1]]`` are ``c``'s out-neighbours in
    the same sorted order :meth:`CGRA.neighbors_out` returns, with
    ``out_link`` carrying the dense link id of each entry.  ``reach``
    mirrors :meth:`CGRA.reach_lists` (the cell itself first, link id
    ``-1``).  ``dist`` aliases the CGRA's shared all-pairs table; rows
    must not be mutated.
    """

    __slots__ = (
        "n",
        "out_ptr",
        "out_nbr",
        "out_link",
        "out_rows",
        "in_ptr",
        "in_nbr",
        "in_link",
        "in_rows",
        "reach_ptr",
        "reach",
        "reach_link",
        "rf_size",
        "dist",
        "_dist_to",
        "_into",
    )

    def __init__(self, cgra: "CGRA") -> None:
        n = cgra.n_cells
        self.n = n
        link_idx = cgra.link_table
        out_ptr, out_nbr, out_link = [0], [], []
        in_ptr, in_nbr, in_link = [0], [], []
        for c in range(n):
            for d in cgra.neighbors_out(c):
                out_nbr.append(d)
                out_link.append(link_idx[(c, d)])
            out_ptr.append(len(out_nbr))
            for s in cgra.neighbors_in(c):
                in_nbr.append(s)
                in_link.append(link_idx[(s, c)])
            in_ptr.append(len(in_nbr))
        reach_ptr, reach, reach_link = [0], [], []
        for c, row in enumerate(cgra.reach_lists()):
            for d in row:
                reach.append(d)
                reach_link.append(-1 if d == c else link_idx[(c, d)])
            reach_ptr.append(len(reach))
        self.out_ptr, self.out_nbr, self.out_link = out_ptr, out_nbr, out_link
        self.in_ptr, self.in_nbr, self.in_link = in_ptr, in_nbr, in_link
        # Row views of the same adjacency: iterating a per-cell list is
        # CPython's fastest traversal (no index arithmetic per step);
        # the CSR arrays remain for link-id lookups and slicing.
        self.out_rows = [
            out_nbr[out_ptr[c] : out_ptr[c + 1]] for c in range(n)
        ]
        self.in_rows = [in_nbr[in_ptr[c] : in_ptr[c + 1]] for c in range(n)]
        self.reach_ptr, self.reach, self.reach_link = (
            reach_ptr,
            reach,
            reach_link,
        )
        self.rf_size = [cell.rf_size for cell in cgra.cells]
        self.dist = cgra.distance_table()
        self._dist_to: dict[int, list[int]] = {}
        self._into: dict[int, dict[int, int]] = {}

    def dist_to(self, dst: int) -> list[int]:
        """Column ``dst`` of the distance table (hops *into* ``dst``),
        gathered once per destination so pruning loops index a flat
        row instead of hopping table rows."""
        col = self._dist_to.get(dst)
        if col is None:
            table = self.dist
            col = [table[c][dst] for c in range(self.n)]
            self._dist_to[dst] = col
        return col

    def links_into(self, dst: int) -> dict[int, int]:
        """``{src: dense link id}`` for every link into ``dst``."""
        m = self._into.get(dst)
        if m is None:
            lo, hi = self.in_ptr[dst], self.in_ptr[dst + 1]
            m = {self.in_nbr[k]: self.in_link[k] for k in range(lo, hi)}
            self._into[dst] = m
        return m


def flat_graph(cgra: "CGRA") -> FlatGraph:
    """The (shared, cached) :class:`FlatGraph` for ``cgra``.

    Memoized on the instance and shared across equal arrays via the
    fingerprint LRU; treat every array as read-only.
    """
    fg = getattr(cgra, "_flat_graph", None)
    if fg is not None:
        return fg
    try:
        # Local import: repro.cache.fingerprint imports arch modules.
        from repro.cache.fingerprint import arch_fingerprint

        fp = arch_fingerprint(cgra)
    except Exception:  # pragma: no cover - fingerprint unavailable
        fp = None
    fg = _FLAT_GRAPHS.get(fp) if fp is not None else None
    if fg is None:
        fg = FlatGraph(cgra)
        if fp is not None:
            _FLAT_GRAPHS[fp] = fg
            while len(_FLAT_GRAPHS) > _FLAT_GRAPHS_MAX:
                _FLAT_GRAPHS.popitem(last=False)
    else:
        _FLAT_GRAPHS.move_to_end(fp)
    cgra._flat_graph = fg
    return fg


# ---------------------------------------------------------------------------
class DialQueue:
    """Bucket (Dial) priority queue, byte-compatible with heapq.

    Buckets are keyed by integer priority; each bucket is a min-heap
    of payloads, so :meth:`pop` yields exactly the order ``heapq``
    would over ``(priority, payload)`` tuples *provided pushes are
    monotone*: no push with a priority below the bucket currently
    being drained.  Every search in this module satisfies that (step
    costs are ``>= 1``; the A*'s ``f`` never decreases along an edge
    because ``h`` drops by exactly 1 per layer while ``g`` grows by at
    least 1).  Draining advances a cursor instead of re-heapifying a
    global heap — pops are O(log bucket) with buckets far smaller than
    the whole frontier.
    """

    __slots__ = ("_buckets", "_cur", "_hi", "_n")

    def __init__(self) -> None:
        self._buckets: dict[int, list] = {}
        self._cur = 0
        self._hi = -1
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def push(self, priority: int, payload) -> None:
        bucket = self._buckets.get(priority)
        if bucket is None:
            bucket = self._buckets[priority] = []
        heapq.heappush(bucket, payload)
        if priority > self._hi:
            self._hi = priority
        if self._n == 0 or priority < self._cur:
            self._cur = priority
        self._n += 1

    def pop(self):
        """``(priority, payload)`` with the smallest priority, ties
        broken by payload order; raises IndexError when empty."""
        if not self._n:
            raise IndexError("pop from empty DialQueue")
        buckets = self._buckets
        cur, hi = self._cur, self._hi
        while cur <= hi:
            bucket = buckets.get(cur)
            if bucket:
                payload = heapq.heappop(bucket)
                if not bucket:
                    del buckets[cur]
                self._cur = cur
                self._n -= 1
                return cur, payload
            if bucket is not None:
                del buckets[cur]
            cur += 1
        raise IndexError("DialQueue bookkeeping out of sync")  # pragma: no cover


# ---------------------------------------------------------------------------
class CellClaims:
    """Cell -> value -> path-refcount claims for spatial routing.

    The single source of truth for "who is routing through this cell"
    during spatial negotiation *and* the greedy router cluster's
    route-repair loop drives.  Counts, not sets: ripping up one edge
    of a fan-out must not erase its sibling's claim on a shared cell.
    ``overused`` — cells currently carrying two or more distinct
    values — is maintained incrementally on the 1 <-> 2 boundary, so
    the incremental negotiator's dirty-net scan never walks all cells.
    """

    __slots__ = ("vals", "overused")

    def __init__(self, n_cells: int) -> None:
        self.vals: list[dict[int, int] | None] = [None] * n_cells
        self.overused: set[int] = set()

    def claim(self, cell: int, value: int) -> None:
        d = self.vals[cell]
        if d is None:
            d = self.vals[cell] = {}
        d[value] = d.get(value, 0) + 1
        if len(d) > 1:
            self.overused.add(cell)

    def release(self, cell: int, value: int) -> None:
        d = self.vals[cell]
        n = d[value] - 1
        if n:
            d[value] = n
        else:
            del d[value]
            if len(d) < 2:
                self.overused.discard(cell)

    def claim_path(self, path: list[int], value: int) -> None:
        for c in path:
            self.claim(c, value)

    def release_path(self, path: list[int], value: int) -> None:
        for c in path:
            self.release(c, value)

    def n_here(self, cell: int) -> int:
        """Distinct values currently claiming ``cell``."""
        d = self.vals[cell]
        return len(d) if d else 0

    def n_others(self, cell: int, value: int) -> int:
        """Distinct values other than ``value`` claiming ``cell``."""
        d = self.vals[cell]
        if not d:
            return 0
        return len(d) - (value in d)

    def exclusive(self, cell: int, value: int) -> bool:
        """Free, or claimed by ``value`` alone (the greedy router's
        one-value-per-route-cell discipline)."""
        d = self.vals[cell]
        return not d or (len(d) == 1 and value in d)


#: Interned ROUTE steps keyed by (cell, position).  Spatial route
#: chains reuse a tiny vocabulary of Step objects — every converged
#: negotiation emits (cell, i, ROUTE) triples drawn from n_cells x
#: max_chain_len — and Step is frozen, so sharing instances is safe
#: and saves the dataclass-construction cost that dominated the
#: output-conversion profile.
_STEP_CACHE: dict[tuple[int, int], Step] = {}


def _route_steps(path: list[int]) -> list[Step]:
    """Convert a cell chain into (interned) ROUTE steps."""
    cache = _STEP_CACHE
    out = []
    for i, c in enumerate(path):
        step = cache.get((c, i))
        if step is None:
            step = cache[(c, i)] = Step(c, i, ROUTE)
        out.append(step)
    return out


# ---------------------------------------------------------------------------
def negotiate_spatial(
    cgra: "CGRA",
    binding: dict[int, int],
    edges: "list[Edge]",
    *,
    max_iters: int = 16,
    incremental: bool = True,
) -> "dict[Edge, list[Step]] | None":
    """Flat PathFinder negotiation over a spatial binding.

    ``edges`` must be the already-filtered, already-sorted route list
    (non-pseudo, non-adjacent, longest first) — the caller computes it
    once so both engines negotiate the identical net list.  Costs are
    integers throughout (unit base + integral history + integral
    pressure) and every step costs at least 1, so the Dijkstra runs on
    inlined Dial buckets: a bucket never receives entries once the
    drain cursor reaches it, so sorting each bucket at drain time by
    ``(cell, prev)`` reproduces the exact pop order of the scalar
    reference's ``(cost, cell, prev)`` heap at a fraction of the
    per-push cost.  With ``incremental=False`` every iteration
    re-routes every edge (the scalar schedule, byte-identical output);
    with ``incremental=True`` iterations after the first re-route only
    nets crossing an overused cell.
    """
    if not edges:
        return {}
    fg = flat_graph(cgra)
    n = fg.n
    blocked = bytearray(n)
    for c in binding.values():
        blocked[c] = 1
    claims = CellClaims(n)
    hist = [0] * n  # per-cell congestion history (integral)
    # Index-based net bookkeeping: the rip-up loop never hashes an
    # Edge — Edge keys appear only in the converged output dict.
    n_edges = len(edges)
    srcs = [binding[e.src] for e in edges]
    dsts = [binding[e.dst] for e in edges]
    values = [e.src for e in edges]
    paths: list[list[int] | None] = [None] * n_edges
    # Generation-stamped Dijkstra scratch, allocated once per call and
    # reused across every search (one negotiation runs up to
    # ``edges * max_iters`` of them).
    gen = 0

    def dijkstra(
        src: int,
        dst: int,
        value: int,
        pressure: int,
        # Scratch and topology bound as defaults: LOAD_FAST in the
        # inner loop instead of a closure deref per access.
        rows=fg.out_rows,
        in_rows=fg.in_rows,
        blocked=blocked,
        vals=claims.vals,
        hist=hist,
        dist=[0] * n,
        prev=[0] * n,
        vis=[0] * n,
        goal=[0] * n,
    ):
        nonlocal gen
        gen += 1
        g = gen
        for c in in_rows[dst]:
            goal[c] = g
        # Dial buckets, inlined: every step costs >= 1, so a bucket
        # never receives entries while (or after) it drains — each is
        # sorted once at drain time, which reproduces the reference
        # heap's (cost, cell, prev) pop order exactly with only a
        # dict-get + list-append per push.
        buckets: dict[int, list[tuple[int, int]]] = {}
        hi = 0
        for c in rows[src]:
            if blocked[c]:
                continue
            d = vals[c]
            cost = 1 + hist[c]
            if d:
                cost += pressure * (len(d) - (value in d))
            dist[c] = cost
            prev[c] = -1
            vis[c] = g
            bucket = buckets.get(cost)
            if bucket is None:
                bucket = buckets[cost] = []
                if cost > hi:
                    hi = cost
            bucket.append((c, -1))
        b = 1  # step costs are >= 1; bucket 0 is always empty
        while b <= hi:
            bucket = buckets.pop(b, None)
            if bucket is None:
                b += 1
                continue
            bucket.sort()
            for cur, _via in bucket:
                if vis[cur] != g or b > dist[cur]:
                    continue
                if goal[cur] == g:
                    chain = [cur]
                    while prev[chain[-1]] != -1:
                        chain.append(prev[chain[-1]])
                    chain.reverse()
                    return chain
                for c2 in rows[cur]:
                    if blocked[c2]:
                        continue
                    d2 = vals[c2]
                    cost = 1 + hist[c2]
                    if d2:
                        cost += pressure * (len(d2) - (value in d2))
                    nd = b + cost
                    if vis[c2] != g or nd < dist[c2]:
                        dist[c2] = nd
                        prev[c2] = cur
                        vis[c2] = g
                        nb = buckets.get(nd)
                        if nb is None:
                            nb = buckets[nd] = []
                            if nd > hi:
                                hi = nd
                        nb.append((c2, cur))
            b += 1
        return None

    skipped = False
    for it in range(max_iters):
        pressure = 1 + 2 * it
        if incremental and it:
            over = claims.overused
            work = [
                i
                for i in range(n_edges)
                if any(c in over for c in paths[i])
            ]
            skipped = skipped or len(work) < n_edges
        else:
            work = range(n_edges)
        for i in work:
            value = values[i]
            old = paths[i]
            if old is not None:
                claims.release_path(old, value)
            path = dijkstra(srcs[i], dsts[i], value, pressure)
            if path is None:
                return None  # walled off: no path at any price
            paths[i] = path
            claims.claim_path(path, value)
        if not claims.overused:
            return {e: _route_steps(p) for e, p in zip(edges, paths)}
        for c in claims.overused:
            hist[c] += claims.n_here(c) - 1
    if skipped:
        # The dirty-set schedule can stall where the full sweep
        # converges (clean nets keep stale detours a full rip-up would
        # reconsider).  One full-schedule retry keeps the flat
        # engine's success a superset of the scalar reference; it only
        # costs on the (rare) genuine stalls — if no iteration ever
        # skipped an edge, the run *was* the full schedule and the
        # retry would just repeat it.
        return negotiate_spatial(
            cgra, binding, edges, max_iters=max_iters, incremental=False
        )
    return None


# ---------------------------------------------------------------------------
_KIND = (HOLD, ROUTE)  # kind bit 0/1, matching "hold" < "route"


class FlatTemporalEngine:
    """Flat-array searches behind ``Router(engine="flat")``.

    One engine per Router; scratch arrays are sized to the largest
    span seen and reset by generation stamp.  Every method returns
    ``(result, explored)`` — the Router wrapper owns tracer counting
    and the span<=0 short-circuits, which are shared with the scalar
    engine.
    """

    __slots__ = ("fg", "allow_hold", "_vis", "_par", "_dist", "_cap", "_gen")

    def __init__(self, fg: FlatGraph, *, allow_hold: bool = True) -> None:
        self.fg = fg
        self.allow_hold = allow_hold
        self._vis: list[int] = []
        self._par: list[int] = []
        self._dist: list[float] = []
        self._cap = 0
        self._gen = 0

    def _ensure(self, layers: int) -> None:
        need = 2 * self.fg.n * layers
        if need > self._cap:
            grow = need - self._cap
            self._vis.extend([0] * grow)
            self._par.extend([0] * grow)
            self._dist.extend([0.0] * grow)
            self._cap = need

    # -- greedy layered BFS (Router.find) ------------------------------
    def find(self, occ, req, *, prune: bool):
        """Feasible step chain + explored count, mirroring the scalar
        layer-BFS state for state (the equivalence suite asserts both
        the chain and the count)."""
        fg = self.fg
        span = req.t_consume - req.t_emit - 1
        dst = req.dst_cell
        value = req.value
        dist_to = fg.dist_to(dst) if prune else None
        allow_hold = self.allow_hold
        reach_ptr, reach, reach_link = fg.reach_ptr, fg.reach, fg.reach_link
        rf_size = fg.rf_size
        intod = fg.links_into(dst)
        S = 2 * fg.n
        self._ensure(span)
        self._gen += 1
        g = self._gen
        vis, par = self._vis, self._par
        # The start is a pseudo-state (producer's emission), encoded
        # with parent -1; real states are cell*2 + kindbit per layer.
        frontier = [req.src_cell * 2 + 1]
        start_code = frontier[0]
        explored = 0
        for k in range(span):
            t = req.t_emit + 1 + k
            last = k == span - 1
            allowed = span - k
            base = occ.time_base(t)
            lbase = occ.link_time_base(t)
            if last:
                lbase_fin = occ.link_time_base(req.t_consume)
            off = k * S
            nxt: list[int] = []
            for st in frontier:
                cell = st >> 1
                # Holds first: parking in the RF is cheaper than
                # burning an FU/bypass slot, and BFS keeps the first
                # path found among equals (scalar expansion order).
                if allow_hold and (
                    rf_size[cell] > 0
                    if base < 0
                    else occ.can_hold_i(value, cell, base + cell)
                ):
                    if dist_to is None or dist_to[cell] <= allowed:
                        explored += 1
                        code = cell * 2
                        i = off + code
                        if vis[i] != g:
                            vis[i] = g
                            par[i] = st if k else -1
                            if last and cell == dst:
                                return (
                                    self._rebuild(req, k, code, start_code),
                                    explored,
                                )
                            nxt.append(code)
                for ri in range(reach_ptr[cell], reach_ptr[cell + 1]):
                    c2 = reach[ri]
                    lid = reach_link[ri]
                    if lid >= 0 and not (
                        lbase < 0 or occ.can_use_link_i(value, lbase + lid)
                    ):
                        continue
                    if not (base < 0 or occ.can_route_i(value, base + c2)):
                        continue
                    if dist_to is not None and dist_to[c2] > allowed:
                        continue
                    explored += 1
                    code = c2 * 2 + 1
                    i = off + code
                    if vis[i] != g:
                        vis[i] = g
                        par[i] = st if k else -1
                        if last and (
                            c2 == dst
                            or (
                                (flid := intod.get(c2)) is not None
                                and (
                                    lbase_fin < 0
                                    or occ.can_use_link_i(
                                        value, lbase_fin + flid
                                    )
                                )
                            )
                        ):
                            return (
                                self._rebuild(req, k, code, start_code),
                                explored,
                            )
                        nxt.append(code)
            if not nxt:
                return None, explored
            frontier = nxt
        return None, explored

    def _rebuild(self, req, k: int, code: int, start_code: int) -> list[Step]:
        S = 2 * self.fg.n
        par = self._par
        out: list[Step] = []
        while True:
            out.append(
                Step(code >> 1, req.t_emit + 1 + k, _KIND[code & 1])
            )
            if k == 0:
                break
            code = par[k * S + code]
            k -= 1
        out.reverse()
        return out

    # -- negotiated A* (Router.find_negotiated) ------------------------
    def find_negotiated(
        self, occ, req, *, prune: bool, history: dict, penalty: float
    ):
        """(steps, cost) + explored, mirroring the scalar A* pop for
        pop: states ``(cell, kind, layer)`` become flat indices that
        are monotone in the scalar tuple order, so heap/Dial ties
        resolve identically."""
        fg = self.fg
        span = req.t_consume - req.t_emit - 1
        dst = req.dst_cell
        value = req.value
        dist_to = fg.dist_to(dst) if prune else None
        reach_ptr, reach = fg.reach_ptr, fg.reach
        rf_size = fg.rf_size
        intod = fg.links_into(dst)
        layers = span + 1
        self._ensure(layers)
        self._gen += 1
        g = self._gen
        vis, par, dist = self._vis, self._par, self._dist
        # Integral cost regime -> Dial buckets on int(f); fractional
        # (or negative — Dial's monotone-push invariant needs step
        # costs >= 0) penalties/history fall back to one heap, same
        # flat arrays.
        integral = (
            float(penalty).is_integer()
            and penalty >= 0
            and all(
                float(v).is_integer() and v >= 0
                for v in history.values()
            )
        )
        start = (req.src_cell * 2 + 1) * layers
        dist[start] = 0.0
        par[start] = -1
        vis[start] = g
        f0 = span  # f = g + h, h = span - layer
        if integral:
            queue = DialQueue()
            queue.push(f0, (0.0, start))
        else:
            heap = [(float(f0), 0.0, start)]
        explored = 0
        best = -1
        lbase_fin = occ.link_time_base(req.t_consume)
        while True:
            if integral:
                if not queue:
                    break
                _f, (d, idx) = queue.pop()
            else:
                if not heap:
                    break
                _f, d, idx = heapq.heappop(heap)
            if vis[idx] != g or d > dist[idx]:
                continue
            explored += 1
            layer = idx % layers
            ck = idx // layers
            cell = ck >> 1
            if layer == span:
                # Terminal discipline == _final_ok: a HOLD is readable
                # only by its own cell; a ROUTE by itself or over a
                # *free* terminal link — congestion there cannot be
                # negotiated away, there is no step left to penalise.
                if ck & 1:
                    ok = cell == dst or (
                        (flid := intod.get(cell)) is not None
                        and (
                            lbase_fin < 0
                            or occ.can_use_link_i(value, lbase_fin + flid)
                        )
                    )
                else:
                    ok = cell == dst
                if ok:
                    best = idx
                    break
                continue
            t = req.t_emit + 1 + layer
            base = occ.time_base(t)
            slot = occ.slot(t)
            nlayer = layer + 1
            h = span - nlayer
            cut = span - layer
            for ri in range(reach_ptr[cell], reach_ptr[cell + 1]):
                c2 = reach[ri]
                if dist_to is not None and dist_to[c2] > cut:
                    continue
                cost = (
                    1.0 + history.get((c2, slot, ROUTE), 0.0)
                    if history
                    else 1.0
                )
                if not (base < 0 or occ.can_route_i(value, base + c2)):
                    cost += penalty
                nd = d + cost
                nidx = (c2 * 2 + 1) * layers + nlayer
                if vis[nidx] != g or nd < dist[nidx]:
                    dist[nidx] = nd
                    par[nidx] = idx
                    vis[nidx] = g
                    if integral:
                        queue.push(int(nd) + h, (nd, nidx))
                    else:
                        heapq.heappush(heap, (nd + h, nd, nidx))
            if dist_to is None or dist_to[cell] <= cut:
                cost = (
                    1.0 + history.get((cell, slot, HOLD), 0.0)
                    if history
                    else 1.0
                )
                if not (
                    rf_size[cell] > 0
                    if base < 0
                    else occ.can_hold_i(value, cell, base + cell)
                ):
                    cost += penalty
                nd = d + cost
                nidx = (cell * 2) * layers + nlayer
                if vis[nidx] != g or nd < dist[nidx]:
                    dist[nidx] = nd
                    par[nidx] = idx
                    vis[nidx] = g
                    if integral:
                        queue.push(int(nd) + h, (nd, nidx))
                    else:
                        heapq.heappush(heap, (nd + h, nd, nidx))
        if best < 0:
            return None, explored
        out: list[Step] = []
        idx = best
        while idx % layers:
            ck = idx // layers
            out.append(
                Step(ck >> 1, req.t_emit + idx % layers, _KIND[ck & 1])
            )
            idx = par[idx]
        out.reverse()
        return (out, dist[best]), explored
