"""EPIMap-style mapping via epimorphic graph extension.

Hamzeh et al. [28] map by *extending* the DFG — inserting routing
operations so the extended graph embeds into the time-extended CGRA
with every edge a direct neighbour hop.  In this package's model the
router's pass-through steps occupy functional units exactly like
EPIMap's routing PEs, so the epimorphic extension is realised by
running the constructive engine with **register-file holds disabled**:
every cycle a value stays alive it must occupy a PE, which is EPIMap's
cost model (and why REGIMap later added registers — see
:mod:`repro.mappers.regimap`).
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.core.mapper import Mapper, MapperInfo
from repro.core.mapping import Mapping
from repro.core.registry import register
from repro.ir.dfg import DFG
from repro.mappers.construct import greedy_construct
from repro.mappers.schedule import priority_order

__all__ = ["EpimapMapper"]


@register
class EpimapMapper(Mapper):
    """Constructive mapping where values live on PEs, never in RFs."""

    info = MapperInfo(
        name="epimap",
        family="heuristic",
        subfamily="graph epimorphism",
        kinds=("temporal",),
        solves="binding+scheduling",
        modeled_after="[28]",
        year=2012,
    )

    def _map(self, dfg: DFG, cgra: CGRA, ii: int | None) -> Mapping:
        order = priority_order(dfg, by="height")
        attempts = 0
        for ii_try in self.ii_range(dfg, cgra, ii):
            attempts += 1
            mapping = greedy_construct(
                dfg, cgra, ii_try, order, allow_hold=False
            )
            if mapping is not None and not mapping.validate(
                raise_on_error=False
            ):
                return mapping
        raise self.fail(
            f"no feasible epimorphic extension on {cgra.name}",
            attempts=attempts,
        )
