"""Stress-aware multi-mapping (wear levelling).

Gu et al. [39] observed that always running the *same* mapping wears
the same cells (NBTI/electromigration stress) and proposed dynamic
reconfiguration between several equivalent mappings so activity
spreads over the array.  :func:`multi_map` generates ``n`` mappings of
one kernel whose cell usage overlaps as little as possible — each
round biases the constructive engine away from cells earlier mappings
used — and :func:`stress_profile` quantifies the levelling.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Sequence

from repro.arch.cgra import CGRA
from repro.core.exceptions import MapFailure
from repro.core.mapping import Mapping
from repro.ir.dfg import DFG
from repro.mappers.construct import PlacementState, greedy_construct
from repro.mappers.schedule import priority_order

__all__ = ["multi_map", "stress_profile", "stress_reduction"]


def multi_map(
    dfg: DFG,
    cgra: CGRA,
    *,
    n_maps: int = 4,
    ii: int | None = None,
    seed: int = 0,
) -> list[Mapping]:
    """Generate ``n_maps`` usage-diverse mappings of one kernel.

    Every mapping is fully valid on its own; together they spread FU
    activity across the array.  Raises :class:`MapFailure` when not
    even one mapping exists.
    """
    rng = random.Random(seed)
    order = priority_order(dfg, by="height")
    wear: Counter = Counter()  # cell -> accumulated usage
    mappings: list[Mapping] = []

    from repro.core.problem import MappingProblem

    lo = ii if ii is not None else MappingProblem(dfg, cgra).mii
    hi = ii if ii is not None else min(
        cgra.n_contexts, 2 * lo + dfg.op_count()
    )

    for _ in range(n_maps):
        def candidates(state: PlacementState, nid, lb, ub):
            op = state.dfg.node(nid).op
            anchors = state.neighbor_cells(nid)
            cells = [
                c.cid for c in state.cgra.cells if c.supports(op)
            ]
            rng.shuffle(cells)
            local = Counter(state.binding.values())
            # Fresh cells first (across maps AND within this map),
            # then near the op's placed neighbours.
            cells.sort(
                key=lambda c: (
                    wear[c] + local[c],
                    sum(state.cgra.distance(a, c) for a in anchors),
                )
            )
            for t in range(lb, ub + 1):
                for c in cells:
                    yield (c, t)

        mapping = None
        for ii_try in range(lo, hi + 1):
            mapping = greedy_construct(
                dfg, cgra, ii_try, order, candidates=candidates
            )
            if mapping is not None and not mapping.validate(
                raise_on_error=False
            ):
                break
            mapping = None
        if mapping is None:
            if not mappings:
                raise MapFailure(
                    "multi_map: not even one mapping exists",
                    mapper="multi_map",
                )
            break
        mapping.mapper = "multi_map"
        mappings.append(mapping)
        for cell in mapping.binding.values():
            wear[cell] += 1
    return mappings


def stress_profile(mappings: Sequence[Mapping]) -> Counter:
    """Per-cell FU usage summed over the mapping set."""
    wear: Counter = Counter()
    for m in mappings:
        for cell in m.binding.values():
            wear[cell] += 1
    return wear


def stress_reduction(mappings: Sequence[Mapping]) -> float:
    """Peak-stress ratio: repeated single mapping vs the rotation.

    Running mapping 0 for every epoch stresses its hottest cell
    ``n * peak0`` times; rotating spreads the same work.  Returns
    ``(n * peak_single) / peak_rotated`` — > 1 means levelling helps.
    """
    if not mappings:
        return 1.0
    n = len(mappings)
    single = Counter()
    for cell in mappings[0].binding.values():
        single[cell] += 1
    peak_single = max(single.values())
    peak_rotated = max(stress_profile(mappings).values())
    return (n * peak_single) / peak_rotated
