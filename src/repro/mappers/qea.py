"""Quantum-inspired evolutionary algorithm (QEA) binding mapper.

Lee, Choi & Dutt [48] bind multi-domain applications with a QEA: each
op/cell pair carries a probability amplitude; individuals are sampled
from the amplitudes, evaluated, and the amplitudes are rotated toward
the best individual observed.  This implementation keeps the QEA loop
(probabilistic genome, observation, rotation toward the elite) on the
spatial binding problem.
"""

from __future__ import annotations

import random

import numpy as np

from repro.arch.cgra import CGRA
from repro.core.mapper import Mapper, MapperInfo
from repro.core.mapping import Mapping
from repro.core.registry import register
from repro.ir.dfg import DFG
from repro.mappers.spatial_common import (
    candidate_cells,
    finalize,
    route_spatial,
    spatial_cost,
)
from repro.obs.tracer import get_tracer

__all__ = ["QEAMapper"]


@register
class QEAMapper(Mapper):
    """Quantum-inspired EA over spatial bindings."""

    info = MapperInfo(
        name="qea",
        family="metaheuristic",
        subfamily="QEA",
        kinds=("spatial",),
        solves="binding",
        modeled_after="[48]",
        year=2011,
    )

    def __init__(
        self,
        seed: int = 0,
        *,
        observations: int = 12,
        generations: int = 40,
        rotation: float = 0.25,
    ) -> None:
        super().__init__(seed)
        self.observations = observations
        self.generations = generations
        self.rotation = rotation

    def _observe(
        self,
        probs: dict[int, np.ndarray],
        cands: dict[int, list[int]],
        rng: np.random.Generator,
    ) -> dict[int, int] | None:
        """Sample one injective binding from the amplitude table."""
        binding: dict[int, int] = {}
        used: set[int] = set()
        # Most-constrained first keeps repair rates low.
        for nid in sorted(cands, key=lambda n: len(cands[n])):
            p = probs[nid].copy()
            for i, c in enumerate(cands[nid]):
                if c in used:
                    p[i] = 0.0
            total = p.sum()
            if total <= 0:
                free = [c for c in cands[nid] if c not in used]
                if not free:
                    return None
                cell = free[int(rng.integers(len(free)))]
            else:
                cell = cands[nid][int(rng.choice(len(p), p=p / total))]
            binding[nid] = cell
            used.add(cell)
        return binding

    def _map(self, dfg: DFG, cgra: CGRA, ii: int | None) -> Mapping:
        rng = np.random.default_rng(self.seed)
        nodes = [n.nid for n in dfg.nodes() if not n.op.is_pseudo]
        cands = {nid: candidate_cells(dfg, cgra, nid) for nid in nodes}
        if any(not c for c in cands.values()):
            raise self.fail("some op has no candidate cell")
        if len(nodes) > len(set().union(*map(set, cands.values()))):
            raise self.fail(
                f"{dfg.name} does not fit spatially on {cgra.name}"
            )
        # Uniform superposition start.
        probs = {
            nid: np.full(len(cands[nid]), 1.0 / len(cands[nid]))
            for nid in nodes
        }

        # As the amplitudes converge, observations repeat; memoizing by
        # the (hashable) binding avoids re-running the BFS router on
        # bindings already scored.
        seen: dict[tuple[tuple[int, int], ...], float] = {}

        def fitness(b: dict[int, int]) -> float:
            key = tuple(sorted(b.items()))
            cached = seen.get(key)
            if cached is not None:
                return cached
            cost = spatial_cost(dfg, cgra, b)
            if cost and route_spatial(dfg, cgra, b) is None:
                cost += 100.0
            seen[key] = cost
            return cost

        tracer = get_tracer()
        best: tuple[float, dict[int, int]] | None = None
        for gen in range(self.generations):
            for _ in range(self.observations):
                b = self._observe(probs, cands, rng)
                if b is None:
                    continue
                f = fitness(b)
                if best is None or f < best[0]:
                    best = (f, dict(b))
                    tracer.progress("qea.best_fitness", f)
            if best is None:
                continue
            if best[0] == 0.0:
                break
            # Rotate amplitudes toward the elite binding.
            for nid in nodes:
                target = best[1][nid]
                p = probs[nid]
                for i, c in enumerate(cands[nid]):
                    if c == target:
                        p[i] += self.rotation
                    else:
                        p[i] *= 1.0 - self.rotation / max(1, len(p) - 1)
                probs[nid] = p / p.sum()

        if best is None:
            raise self.fail("no injective binding could be observed")
        mapping = finalize(dfg, cgra, best[1], self.info.name)
        if mapping is None:
            raise self.fail(
                f"best observation (fitness {best[0]:.1f}) is unroutable"
            )
        return mapping
