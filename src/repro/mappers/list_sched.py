"""List-scheduling mapper — the classic temporal baseline.

The earliest automated flows (Bondalapati & Prasanna [12]; later
robust-compilation baselines [36]) schedule operations in critical-
path-first order and bind each to the first feasible cell, growing the
II until everything fits.  This is the reference point every other
temporal mapper in the package is measured against.
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.core.mapper import Mapper, MapperInfo
from repro.core.mapping import Mapping
from repro.core.registry import register
from repro.ir.dfg import DFG
from repro.mappers.construct import greedy_construct
from repro.mappers.schedule import priority_order

__all__ = ["ListSchedulingMapper"]


@register
class ListSchedulingMapper(Mapper):
    """Height-priority list scheduling with nearest-cell binding."""

    info = MapperInfo(
        name="list_sched",
        family="heuristic",
        subfamily="list",
        kinds=("temporal",),
        solves="binding+scheduling",
        modeled_after="[12], [36]",
        year=1998,
    )

    def _map(self, dfg: DFG, cgra: CGRA, ii: int | None) -> Mapping:
        order = priority_order(dfg, by="height")
        attempts = 0
        for ii_try in self.ii_range(dfg, cgra, ii):
            attempts += 1
            mapping = greedy_construct(dfg, cgra, ii_try, order)
            if mapping is not None and not mapping.validate(
                raise_on_error=False
            ):
                return mapping
        raise self.fail(
            f"no feasible II for {dfg.name} on {cgra.name}",
            attempts=attempts,
        )
