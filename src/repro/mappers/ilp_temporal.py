"""Space-time ILP mapper.

The integer-linear-programming line of Table I ([41] Brenner et al.'s
optimal simultaneous scheduling/binding/routing; [15] Guo et al.'s
data-arrival synchronisers): binding and scheduling solved together as
one 0/1 program.  Variables ``x[v, s]`` choose a ``(cell, cycle)``
slot per operation; constraints are assignment, folded FU exclusivity
and edge compatibility (implication form).  The program is solved as
pure feasibility: the II search stops at the first II whose model
admits an integral point, and infeasibility of every lower II is
*proven* by the branch-and-bound solver — the defining feature of the
exact column.
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.core.mapper import Mapper, MapperInfo
from repro.core.mapping import Mapping
from repro.core.registry import register
from repro.ir.dfg import DFG
from repro.mappers import adjplace
from repro.mappers.regraph import split_dist0_edges
from repro.solvers.ilp import ILP

__all__ = ["ILPTemporalMapper"]


@register
class ILPTemporalMapper(Mapper):
    """0/1 ILP over (cell, cycle) slots, solved by our B&B solver."""

    info = MapperInfo(
        name="ilp",
        family="exact",
        subfamily="ILP",
        kinds=("temporal",),
        solves="binding+scheduling",
        modeled_after="[41], [15], [34]",
        year=2006,
        exact=True,
    )

    def __init__(
        self,
        seed: int = 0,
        *,
        node_limit: int = 20_000,
        time_limit: float = 20.0,
        max_route_rounds: int = 1,
        window: int | None = None,
    ) -> None:
        super().__init__(seed)
        self.node_limit = node_limit
        self.time_limit = time_limit
        self.max_route_rounds = max_route_rounds
        self.window = window

    def _solve(
        self,
        dfg: DFG,
        cgra: CGRA,
        ii: int,
        hint: dict[int, adjplace.Slot] | None = None,
    ) -> dict[int, adjplace.Slot] | None:
        domains = adjplace.slot_domains(dfg, cgra, ii, window=self.window)
        ilp = ILP(name=f"map_{dfg.name}_ii{ii}")
        var: dict[tuple[int, adjplace.Slot], int] = {}
        for nid, dom in domains.items():
            for s in dom:
                var[(nid, s)] = ilp.add_var(f"x_{nid}_{s[0]}_{s[1]}")
            ilp.add_constraint(
                {var[(nid, s)]: 1.0 for s in dom}, "==", 1.0
            )

        by_res: dict[tuple[int, int], list[int]] = {}
        for (nid, (c, t)), v in var.items():
            by_res.setdefault((c, t % ii), []).append(v)
        for vs in by_res.values():
            if len(vs) > 1:
                ilp.add_constraint({v: 1.0 for v in vs}, "<=", 1.0)

        for e in adjplace.real_edges(dfg):
            lat = dfg.node(e.src).op.latency
            if e.src == e.dst:
                for s in domains[e.src]:
                    if not adjplace.compatible(cgra, ii, e, lat, s, s):
                        ilp.add_constraint(
                            {var[(e.src, s)]: 1.0}, "<=", 0.0
                        )
                continue
            for su in domains[e.src]:
                support = {
                    var[(e.dst, sv)]: 1.0
                    for sv in domains[e.dst]
                    if adjplace.compatible(cgra, ii, e, lat, su, sv)
                }
                coeffs = dict(support)
                coeffs[var[(e.src, su)]] = -1.0
                # x[u, su] <= sum of compatible x[v, sv]
                ilp.add_constraint(coeffs, ">=", 0.0)

        # Pure feasibility: any integral point proves the II, so the
        # first incumbent terminates the search immediately.  A prior
        # assignment (earlier II or round) becomes a MIP start: if it
        # is still feasible here, the solver returns without branching.
        warm = None
        if hint is not None:
            warm = {v: 0.0 for v in var.values()}
            for nid, s in hint.items():
                idx = var.get((nid, s))
                if idx is None:
                    warm = None
                    break
                warm[idx] = 1.0
        res = ilp.solve(
            node_limit=self.node_limit,
            time_limit=self.time_limit,
            warm_start=warm,
        )
        if not res.ok:
            return None
        assign: dict[int, adjplace.Slot] = {}
        for (nid, s), v in var.items():
            if res.x[v] > 0.5:
                assign[nid] = s
        return assign

    def _map(self, dfg: DFG, cgra: CGRA, ii: int | None) -> Mapping:
        attempts = 0
        hints: dict[int, dict[int, adjplace.Slot]] = {}
        for ii_try in self.ii_range(dfg, cgra, ii):
            for rounds in range(self.max_route_rounds + 1):
                attempts += 1
                work = (
                    dfg if rounds == 0 else split_dist0_edges(dfg, rounds)
                )
                assign = self._solve(
                    work, cgra, ii_try, hint=hints.get(rounds)
                )
                if assign is None:
                    continue
                hints[rounds] = assign
                mapping = adjplace.build_mapping(
                    work, cgra, ii_try, assign, self.info.name
                )
                if not mapping.validate(raise_on_error=False):
                    return mapping
        raise self.fail(
            f"ILP proved the windowed model infeasible on {cgra.name}",
            attempts=attempts,
        )
