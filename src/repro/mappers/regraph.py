"""DFG extension by explicit routing operations.

EPIMap [28] introduced the move that most exact formulations borrow:
when the graph does not embed, *change the graph* — insert ROUTE
operations so every hop is a direct neighbour read.  Routing ops are
real operations (they occupy a cell for a cycle), which is precisely
how the architecture pays for multi-hop communication.

:func:`split_dist0_edges` adds one ROUTE op on every intra-iteration
edge between real operations; applying it ``r`` times gives every
producer-consumer pair ``r`` relay stations.  Loop-carried edges are
left alone: splitting them would lengthen their recurrence cycles and
raise RecMII, which no published method does implicitly.
"""

from __future__ import annotations

from repro.ir.dfg import DFG, Edge, Op

__all__ = ["split_dist0_edges", "split_edge"]


def split_edge(dfg: DFG, e: Edge) -> int:
    """Insert a ROUTE node on edge ``e`` (in place); returns its id.

    ``u -> v`` becomes ``u -> r -> v``; the dependence distance stays
    on the first segment so consumer timing semantics are unchanged.
    """
    dfg.remove_edge(e)
    r = dfg.add(Op.ROUTE, e.src)
    if e.dist:
        # Move the distance onto the u -> r segment.
        old = dfg.operand(r, 0)
        dfg.remove_edge(old)
        dfg.connect(e.src, r, port=0, dist=e.dist)
    dfg.connect(r, e.dst, port=e.port, dist=0)
    return r


def split_dist0_edges(dfg: DFG, rounds: int = 1) -> DFG:
    """A copy of ``dfg`` with every real dist-0 edge split ``rounds`` times."""
    out = dfg.copy(name=f"{dfg.name}+r{rounds}")
    for _ in range(rounds):
        targets = [
            e
            for e in list(out.edges())
            if e.dist == 0
            and not out.node(e.src).op.is_pseudo
            and not out.node(e.dst).op.is_pseudo
        ]
        for e in targets:
            split_edge(out, e)
    out.check()
    return out
