"""GenMap-style genetic-algorithm spatial mapper.

Kojima et al.'s GenMap [19] optimises spatial bindings with a genetic
algorithm.  This implementation keeps the published structure —
population of injective bindings, tournament selection, position-wise
crossover with duplicate repair, relocation/swap mutation, elitism —
with a wirelength-plus-routability fitness.
"""

from __future__ import annotations

import random

from repro.arch.cgra import CGRA
from repro.core.mapper import Mapper, MapperInfo
from repro.core.mapping import Mapping
from repro.core.registry import register
from repro.ir.dfg import DFG
from repro.mappers.spatial_common import (
    candidate_cells,
    finalize,
    random_binding,
    route_spatial,
    spatial_cost,
)

__all__ = ["GenMapMapper"]


@register
class GenMapMapper(Mapper):
    """GA over spatial bindings (GenMap-style)."""

    info = MapperInfo(
        name="genmap",
        family="metaheuristic",
        subfamily="GA",
        kinds=("spatial",),
        solves="binding",
        modeled_after="[19]",
        year=2020,
    )

    def __init__(
        self,
        seed: int = 0,
        *,
        population: int = 24,
        generations: int = 40,
        tournament: int = 3,
        mutation_rate: float = 0.25,
        elite: int = 2,
    ) -> None:
        super().__init__(seed)
        self.population = population
        self.generations = generations
        self.tournament = tournament
        self.mutation_rate = mutation_rate
        self.elite = elite

    # ------------------------------------------------------------------
    def _fitness(self, dfg: DFG, cgra: CGRA, b: dict[int, int]) -> float:
        cost = spatial_cost(dfg, cgra, b)
        if cost == 0:
            return 0.0
        # Unroutable bindings get a large penalty on top of wirelength.
        if route_spatial(dfg, cgra, b) is None:
            cost += 100.0
        return cost

    def _repair(
        self, dfg: DFG, cgra: CGRA, b: dict[int, int], rng: random.Random
    ) -> dict[int, int] | None:
        """Resolve duplicate cells after crossover."""
        seen: set[int] = set()
        clashes = []
        for nid, cell in b.items():
            if cell in seen:
                clashes.append(nid)
            else:
                seen.add(cell)
        for nid in clashes:
            options = [
                c for c in candidate_cells(dfg, cgra, nid) if c not in seen
            ]
            if not options:
                return None
            cell = rng.choice(options)
            b[nid] = cell
            seen.add(cell)
        return b

    def _crossover(
        self,
        dfg: DFG,
        cgra: CGRA,
        a: dict[int, int],
        b: dict[int, int],
        rng: random.Random,
    ) -> dict[int, int] | None:
        child = {
            nid: (a[nid] if rng.random() < 0.5 else b[nid]) for nid in a
        }
        return self._repair(dfg, cgra, child, rng)

    def _mutate(
        self, dfg: DFG, cgra: CGRA, b: dict[int, int], rng: random.Random
    ) -> None:
        if rng.random() >= self.mutation_rate or not b:
            return
        nid = rng.choice(list(b))
        used = set(b.values())
        options = [
            c
            for c in candidate_cells(dfg, cgra, nid)
            if c not in used or c == b[nid]
        ]
        if options:
            b[nid] = rng.choice(options)

    # ------------------------------------------------------------------
    def _map(self, dfg: DFG, cgra: CGRA, ii: int | None) -> Mapping:
        rng = random.Random(self.seed)
        pop: list[dict[int, int]] = []
        for _ in range(self.population * 3):
            b = random_binding(dfg, cgra, rng)
            if b is not None:
                pop.append(b)
            if len(pop) == self.population:
                break
        if not pop:
            raise self.fail(
                f"{dfg.name} does not fit spatially on {cgra.name}"
            )

        def tournament_pick(scored):
            group = rng.sample(scored, min(self.tournament, len(scored)))
            return min(group, key=lambda sb: sb[0])[1]

        best: tuple[float, dict[int, int]] | None = None
        for gen in range(self.generations):
            scored = [
                (self._fitness(dfg, cgra, b), b) for b in pop
            ]
            scored.sort(key=lambda sb: sb[0])
            if best is None or scored[0][0] < best[0]:
                best = (scored[0][0], dict(scored[0][1]))
            if best[0] == 0.0:
                break
            nxt = [dict(b) for _, b in scored[: self.elite]]
            while len(nxt) < self.population:
                pa = tournament_pick(scored)
                pb = tournament_pick(scored)
                child = self._crossover(dfg, cgra, dict(pa), pb, rng)
                if child is None:
                    child = dict(pa)
                self._mutate(dfg, cgra, child, rng)
                nxt.append(child)
            pop = nxt

        assert best is not None
        mapping = finalize(dfg, cgra, best[1], self.info.name)
        if mapping is None:
            raise self.fail(
                f"best individual (fitness {best[0]:.1f}) is unroutable"
            )
        return mapping
