"""Edge-centric modulo scheduling (EMS).

Park et al. [37] inverted the classic op-centric loop: the scarce
resource is routing, so placement decisions should be driven by route
cost, not slot availability.  Here, each operation probes its candidate
slots by *actually routing* its edges there (transactionally, via
``PlacementState.place``) and keeps the slot whose committed routes are
cheapest — routing decides, placement follows.
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.core.mapper import Mapper, MapperInfo
from repro.core.mapping import Mapping
from repro.core.registry import register
from repro.ir.dfg import DFG
from repro.mappers.construct import PlacementState
from repro.mappers.schedule import priority_order

__all__ = ["EdgeCentricMapper"]


@register
class EdgeCentricMapper(Mapper):
    """Route-cost-driven placement (EMS-style)."""

    info = MapperInfo(
        name="edge_centric",
        family="heuristic",
        subfamily="edge-centric MS",
        kinds=("temporal",),
        solves="binding+scheduling",
        modeled_after="[37]",
        year=2008,
    )

    def __init__(self, seed: int = 0, *, probe_limit: int = 24) -> None:
        super().__init__(seed)
        self.probe_limit = probe_limit

    def _attempt(self, dfg: DFG, cgra: CGRA, ii: int) -> Mapping | None:
        state = PlacementState(dfg, cgra, ii)
        window = 2 * ii + 2
        for nid in priority_order(dfg, by="height"):
            lb, ub = state.time_bounds(nid, window)
            if lb > ub:
                return None
            op = dfg.node(nid).op
            anchors = state.neighbor_cells(nid)
            cells = [c.cid for c in cgra.cells if c.supports(op)]
            cells.sort(
                key=lambda c: sum(cgra.distance(a, c) for a in anchors)
            )
            # Probe slots: place, measure committed route cost, unplace.
            best: tuple[float, int, int] | None = None
            probes = 0
            for t in range(lb, ub + 1):
                for cell in cells:
                    if probes >= self.probe_limit and best is not None:
                        break
                    if not state.place(nid, cell, t):
                        continue
                    probes += 1
                    cost = sum(
                        len(state.routes[e])
                        for e in state._routable_edges_of(nid)
                        if e in state.routes
                    ) + 0.1 * (t - lb)
                    state.unplace(nid)
                    if best is None or cost < best[0]:
                        best = (cost, cell, t)
                    if cost == 0:
                        break
                if best is not None and (
                    best[0] == 0 or probes >= self.probe_limit
                ):
                    break
            if best is None:
                return None
            placed = state.place(nid, best[1], best[2])
            assert placed, "probed slot must remain placeable"
        mapping = state.to_mapping(self.info.name)
        if mapping.validate(raise_on_error=False):
            return None
        return mapping

    def _map(self, dfg: DFG, cgra: CGRA, ii: int | None) -> Mapping:
        attempts = 0
        for ii_try in self.ii_range(dfg, cgra, ii):
            attempts += 1
            mapping = self._attempt(dfg, cgra, ii_try)
            if mapping is not None:
                return mapping
        raise self.fail(
            f"no feasible II for {dfg.name} on {cgra.name}",
            attempts=attempts,
        )
