"""RAMP-style resource-aware remapping.

Dave et al. [38] diagnose *why* a mapping attempt failed and pick the
remapping strategy that addresses the cause, escalating through
progressively more expensive techniques before surrendering II.  This
implementation keeps that escalation ladder:

1. plain constructive pass (cheap),
2. wider time window — exploits register files for routing in time,
3. re-ordered pass placing the *failing* operation's neighbourhood
   first (the failure-driven re-prioritisation),
4. randomised retries,
5. only then II + 1.
"""

from __future__ import annotations

import random

from repro.arch.cgra import CGRA
from repro.core.mapper import Mapper, MapperInfo
from repro.core.mapping import Mapping
from repro.core.registry import register
from repro.ir.dfg import DFG
from repro.mappers.construct import PlacementState, default_candidates
from repro.mappers.schedule import priority_order

__all__ = ["RampMapper"]


@register
class RampMapper(Mapper):
    """Failure-diagnosing escalation of remapping strategies."""

    info = MapperInfo(
        name="ramp",
        family="heuristic",
        subfamily="failure-aware",
        kinds=("temporal",),
        solves="binding+scheduling",
        modeled_after="[38]",
        year=2018,
    )

    def __init__(self, seed: int = 0, *, random_retries: int = 4) -> None:
        super().__init__(seed)
        self.random_retries = random_retries

    def _construct(
        self,
        dfg: DFG,
        cgra: CGRA,
        ii: int,
        order: list[int],
        window: int,
        rng: random.Random | None = None,
    ) -> tuple[Mapping | None, int | None]:
        """Constructive pass returning (mapping, failing node)."""
        state = PlacementState(dfg, cgra, ii)
        for nid in order:
            lb, ub = state.time_bounds(nid, window)
            if lb > ub:
                return None, nid
            placed = False
            for cell, t in default_candidates(state, nid, lb, ub, rng=rng):
                if state.place(nid, cell, t):
                    placed = True
                    break
            if not placed:
                return None, nid
        mapping = state.to_mapping(self.info.name)
        if mapping.validate(raise_on_error=False):
            return None, None
        return mapping, None

    @staticmethod
    def _prioritise_neighbourhood(
        dfg: DFG, order: list[int], focus: int
    ) -> list[int]:
        """Stable re-order: the failing op's connected ops move early.

        Keeps relative (topological) order within both partitions, so
        dependences remain respected.
        """
        hot = {focus}
        for e in dfg.in_edges(focus):
            hot.add(e.src)
        for e in dfg.out_edges(focus):
            hot.add(e.dst)
        return [n for n in order if n in hot] + [
            n for n in order if n not in hot
        ]

    def _map(self, dfg: DFG, cgra: CGRA, ii: int | None) -> Mapping:
        rng = random.Random(self.seed)
        base_order = priority_order(dfg, by="height")
        attempts = 0
        for ii_try in self.ii_range(dfg, cgra, ii):
            window = 2 * ii_try + 2
            # Strategy 1: plain pass.
            attempts += 1
            mapping, failed = self._construct(
                dfg, cgra, ii_try, base_order, window
            )
            if mapping is not None:
                return mapping
            # Strategy 2: wider window (more routing-in-time slack).
            attempts += 1
            mapping, failed2 = self._construct(
                dfg, cgra, ii_try, base_order, 2 * window
            )
            if mapping is not None:
                return mapping
            # Strategy 3: failure-driven re-prioritisation.
            focus = failed if failed is not None else failed2
            if focus is not None:
                attempts += 1
                order = self._prioritise_neighbourhood(
                    dfg, base_order, focus
                )
                mapping, _ = self._construct(
                    dfg, cgra, ii_try, order, window
                )
                if mapping is not None:
                    return mapping
            # Strategy 4: randomised retries.
            for _ in range(self.random_retries):
                attempts += 1
                mapping, _ = self._construct(
                    dfg, cgra, ii_try, base_order, window, rng=rng
                )
                if mapping is not None:
                    return mapping
        raise self.fail(
            f"all remapping strategies exhausted on {cgra.name}",
            attempts=attempts,
        )
