"""SMT-based mapper (lazy DPLL(T)).

Donovick et al. [44] map CGRAs with restricted routing networks via
satisfiability modulo theories.  This implementation runs the classic
*lazy* SMT loop on the adjacency-placement model:

1. the Boolean skeleton — one ``x[v, c]`` literal per op/cell pair,
   exactly-one per op, op-support and spatial-degree constraints — is
   solved by the package's DPLL SAT solver;
2. each Boolean model (a complete binding) goes to the **theory
   solver**: scheduling as difference logic.  Adjacent producer/
   consumer pairs pin exact time offsets (``t_v = t_u + 1`` modulo the
   iteration distance), same-cell pairs allow register-file slack
   (``t_v >= t_u + 1``), anything else is a theory conflict.  Equality
   components collapse to single integer offsets; the residual
   offset/fold problem is finite-domain and solved exactly;
3. a theory conflict adds a blocking clause over the binding literals
   and the loop resumes — until a model schedules or the skeleton is
   exhausted (UNSAT: infeasibility proven within the model).

Like the other exact mappers, ROUTE-insertion rounds recover multi-hop
communication before the II escalates.

The Boolean skeleton is **II-independent**, so the escalation loop
keeps one incremental CDCL instance per route-insertion round: theory
conflicts that do not depend on the II (unreachable cell pairs) become
permanent blocking clauses, II-dependent ones are guarded by a per-II
selector literal, and each II solves under ``assumptions=[selector]``
— learned clauses and branching state carry across the whole
escalation instead of being rebuilt per II.

Caveat: the loop enumerates at most ``max_models`` Boolean models per
(II, round); when that budget is exhausted the mapper escalates even
though an unexplored binding might have scheduled, so infeasibility is
*proven* only when the skeleton itself goes UNSAT within the budget.
On larger kernels this can yield a higher II than the eager ILP/SAT
encodings (which explore bindings and schedules jointly) — the classic
lazy-SMT trade-off.
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.core.mapper import Mapper, MapperInfo
from repro.core.mapping import Mapping
from repro.core.registry import register
from repro.ir.dfg import DFG
from repro.mappers import adjplace
from repro.mappers.regraph import split_dist0_edges
from repro.solvers.csp import CSP, CSPTimeout, CSPUnsat
from repro.solvers.sat import CNF, SatSolver

__all__ = ["SMTMapper"]


class _Skeleton:
    """The II-independent Boolean binding skeleton, solved incrementally.

    One CNF + CDCL pair per route-insertion round; II escalation adds a
    fresh selector literal per II (retiring the previous one) and new
    blocking clauses, never re-encoding the skeleton.
    """

    def __init__(self, dfg: DFG, cgra: CGRA) -> None:
        self.ok = True
        self.var: dict[tuple[int, int], int] = {}
        self.cnf = CNF()
        nodes = [n.nid for n in dfg.nodes() if not n.op.is_pseudo]
        cells = {
            nid: [
                c.cid for c in cgra.cells
                if c.supports(dfg.node(nid).op)
            ]
            for nid in nodes
        }
        if any(not cs for cs in cells.values()):
            self.ok = False
            self.solver = None
            return
        for nid in nodes:
            lits = []
            for c in cells[nid]:
                v = self.cnf.new_var()
                self.var[(nid, c)] = v
                lits.append(v)
            self.cnf.exactly_one(lits)
        # Boolean-level pruning: endpoints of an edge must share a cell
        # or be linked (the theory would reject anything else anyway).
        for e in adjplace.real_edges(dfg):
            if e.src == e.dst:
                continue
            for cu in cells[e.src]:
                support = [
                    self.var[(e.dst, cv)]
                    for cv in cells[e.dst]
                    if cv == cu or cgra.has_link(cu, cv)
                ]
                if support:
                    self.cnf.implies_any(self.var[(e.src, cu)], support)
                else:
                    self.cnf.add(-self.var[(e.src, cu)])
        self.solver = SatSolver(self.cnf)
        self.selector: int | None = None

    def new_ii(self) -> int:
        """Retire the previous II's guarded clauses; return a fresh guard."""
        if self.selector is not None:
            self.cnf.add(-self.selector)
        self.selector = self.cnf.new_var()
        return self.selector


@register
class SMTMapper(Mapper):
    """Lazy SMT: SAT binding skeleton + difference-logic scheduling."""

    info = MapperInfo(
        name="smt",
        family="exact",
        subfamily="SMT",
        kinds=("temporal",),
        solves="binding+scheduling",
        modeled_after="[44]",
        year=2019,
        exact=True,
    )

    def __init__(
        self,
        seed: int = 0,
        *,
        max_models: int = 200,
        max_route_rounds: int = 1,
        offset_window: int | None = None,
    ) -> None:
        super().__init__(seed)
        self.max_models = max_models
        self.max_route_rounds = max_route_rounds
        self.offset_window = offset_window

    def cache_token(self) -> str:
        return (
            f"models={self.max_models};rounds={self.max_route_rounds}"
            f";window={self.offset_window}"
        )

    # ------------------------------------------------------------------
    def _theory_schedule(
        self, dfg: DFG, cgra: CGRA, ii: int, binding: dict[int, int]
    ) -> tuple[dict[int, int] | None, bool, set[int] | None]:
        """Difference-logic scheduling for a fixed binding.

        Returns ``(issue cycles, False, None)`` on success, or
        ``(None, ii_dependent, core)`` on a theory conflict:
        ``ii_dependent`` is False only for conflicts that hold at
        *every* II (the caller may block them permanently), and
        ``core`` names the ops whose cells alone force the conflict
        (None when the whole binding is implicated) — blocking just
        the core prunes every binding that repeats it.
        """
        nodes = list(binding)
        edges = adjplace.real_edges(dfg)

        # Union-find over equality constraints (adjacent placements fix
        # the relative offset of the endpoints exactly).
        parent = {n: n for n in nodes}
        delta = {n: 0 for n in nodes}  # t(n) - t(root)

        def find(n):
            if parent[n] == n:
                return n, 0
            root, off = find(parent[n])
            parent[n] = root
            delta[n] += off
            return root, delta[n]

        def union(a, b, diff):
            """Impose t(b) - t(a) == diff; False on contradiction."""
            ra, da = find(a)
            rb, db = find(b)
            if ra == rb:
                return (db - da) == diff
            parent[rb] = ra
            delta[rb] = da + diff - db
            return True

        def component(root: int) -> set[int]:
            return {n for n in nodes if find(n)[0] == root}

        ineqs: list[tuple[int, int, int]] = []  # t(b) - t(a) >= w
        for e in edges:
            lat = dfg.node(e.src).op.latency
            cu, cv = binding[e.src], binding[e.dst]
            w = lat - e.dist * ii
            if cu == cv:
                if e.src == e.dst:
                    if w > 0:
                        # Recurrence tighter than the II: holds for
                        # every binding, so the core is empty — the
                        # II itself is infeasible.
                        return None, True, set()
                    continue
                ineqs.append((e.src, e.dst, w))
            elif cgra.has_link(cu, cv):
                if not union(e.src, e.dst, w):
                    return None, True, component(find(e.src)[0])
            else:
                # Not reachable in the adjacency model at any II.
                return None, False, {e.src, e.dst}

        # Components: offset variables over a finite window.
        comps: dict[int, list[int]] = {}
        for n in nodes:
            root, _ = find(n)
            comps.setdefault(root, []).append(n)
        window = (
            self.offset_window
            if self.offset_window is not None
            else 2 * ii + len(nodes)
        )
        # Member time = comp offset + rel, and must be >= 0: the
        # component's domain starts where all members are non-negative.
        rel = {n: find(n)[1] for n in nodes}
        csp = CSP(name="smt_theory")
        for root, members in comps.items():
            lo = max(-rel[m] for m in members)
            csp.add_var(f"c{root}", range(lo, lo + window + 1))

        for a, b, w in ineqs:
            ra, rb = find(a)[0], find(b)[0]
            if ra == rb:
                if rel[b] - rel[a] < w:
                    return None, True, component(ra)
                continue
            csp.add_constraint(
                (f"c{ra}", f"c{rb}"),
                lambda ta, tb, w=w, da=rel[a], db=rel[b]: (
                    tb + db - ta - da >= w
                ),
            )

        # Folded FU exclusivity between ops sharing a cell.
        by_cell: dict[int, list[int]] = {}
        for n in nodes:
            by_cell.setdefault(binding[n], []).append(n)
        for cell, members in by_cell.items():
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    ra, rb = find(a)[0], find(b)[0]
                    if ra == rb:
                        if (rel[a] - rel[b]) % ii == 0:
                            return None, True, component(ra) | {a, b}
                        continue
                    csp.add_constraint(
                        (f"c{ra}", f"c{rb}"),
                        lambda ta, tb, da=rel[a], db=rel[b], ii=ii: (
                            (ta + da - tb - db) % ii != 0
                        ),
                    )
        try:
            sol = csp.solve(node_limit=20_000)
        except (CSPUnsat, CSPTimeout):
            return None, True, None
        return {
            n: sol[f"c{find(n)[0]}"] + rel[n] for n in nodes
        }, False, None

    # ------------------------------------------------------------------
    def _solve(
        self, skeleton: _Skeleton, dfg: DFG, cgra: CGRA, ii: int
    ) -> tuple[dict[int, int], dict[int, int]] | None:
        sel = skeleton.new_ii()
        var = skeleton.var
        cnf = skeleton.cnf
        for _ in range(self.max_models):
            res = skeleton.solver.solve(assumptions=[sel])
            if not res.sat:
                return None
            binding = {
                nid: c
                for (nid, c), v in var.items()
                if res.assignment[v]
            }
            schedule, ii_dependent, core = self._theory_schedule(
                dfg, cgra, ii, binding
            )
            if schedule is not None:
                return binding, schedule
            # Theory conflict: block the conflict core (the whole
            # binding when no core was isolated) — permanently when
            # the conflict holds at every II, else under this II's
            # guard.
            ops = binding if core is None else core
            block = [-var[(nid, binding[nid])] for nid in ops]
            if ii_dependent:
                cnf.add(-sel, *block)
            else:
                cnf.add(*block)
        return None

    def _map(self, dfg: DFG, cgra: CGRA, ii: int | None) -> Mapping:
        attempts = 0
        skeletons: dict[int, _Skeleton] = {}
        works: dict[int, DFG] = {}
        for ii_try in self.ii_range(dfg, cgra, ii):
            for rounds in range(self.max_route_rounds + 1):
                attempts += 1
                work = works.get(rounds)
                if work is None:
                    work = (
                        dfg if rounds == 0 else split_dist0_edges(dfg, rounds)
                    )
                    works[rounds] = work
                skeleton = skeletons.get(rounds)
                if skeleton is None:
                    skeleton = skeletons[rounds] = _Skeleton(work, cgra)
                if not skeleton.ok:
                    continue
                solved = self._solve(skeleton, work, cgra, ii_try)
                if solved is None:
                    continue
                binding, schedule = solved
                assign = {
                    nid: (binding[nid], schedule[nid]) for nid in binding
                }
                mapping = adjplace.build_mapping(
                    work, cgra, ii_try, assign, self.info.name
                )
                if not mapping.validate(raise_on_error=False):
                    return mapping
        raise self.fail(
            f"SMT skeleton exhausted on {cgra.name}", attempts=attempts
        )
