"""HiMap-style hierarchical mapping.

Wijerathne et al. [26] scale to large arrays by mapping at two levels:
the DFG is clustered, clusters are placed onto sub-array *regions*,
and only then are operations detail-placed inside (or near) their
cluster's region.  Candidate sets shrink from "every cell" to "a
region plus its fringe", which is where the scalability comes from —
the effect the scalability benchmark measures against flat mappers.

HiMap is also the survey's example of termination by construction:
"an iterative algorithm that terminates when a valid mapping is
found"; the region restriction is relaxed progressively until the flat
search is reached, so the hierarchical mapper never does worse than
its flat fallback.
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.core.mapper import Mapper, MapperInfo
from repro.core.mapping import Mapping
from repro.core.registry import register
from repro.ir.dfg import DFG
from repro.mappers.construct import PlacementState, greedy_construct
from repro.mappers.schedule import priority_order

__all__ = ["HiMapMapper"]


@register
class HiMapMapper(Mapper):
    """Cluster -> region assignment, then region-restricted placement."""

    info = MapperInfo(
        name="himap",
        family="heuristic",
        subfamily="hierarchical",
        kinds=("temporal",),
        solves="binding+scheduling",
        modeled_after="[26]",
        year=2021,
    )

    def __init__(self, seed: int = 0, *, region: int = 2) -> None:
        super().__init__(seed)
        self.region = region

    # ------------------------------------------------------------------
    def _cluster(self, dfg: DFG, size: int) -> dict[int, int]:
        """Greedy topological clustering into groups of <= size ops."""
        cluster_of: dict[int, int] = {}
        current, count, cid = [], 0, 0
        for nid in priority_order(dfg, by="topo"):
            cluster_of[nid] = cid
            count += 1
            if count >= size:
                cid += 1
                count = 0
        return cluster_of

    def _regions(self, cgra: CGRA) -> list[list[int]]:
        """Tile the array into region x region blocks of cell ids."""
        out = []
        r = self.region
        for by in range(0, cgra.height, r):
            for bx in range(0, cgra.width, r):
                block = [
                    cgra.cell_at(x, y).cid
                    for y in range(by, min(by + r, cgra.height))
                    for x in range(bx, min(bx + r, cgra.width))
                ]
                out.append(block)
        return out

    def _attempt(
        self, dfg: DFG, cgra: CGRA, ii: int, fringe: int
    ) -> Mapping | None:
        regions = self._regions(cgra)
        cluster_of = self._cluster(dfg, max(1, self.region ** 2 * ii))
        n_clusters = max(cluster_of.values(), default=0) + 1
        # Clusters walk the regions in snake order: consecutive
        # clusters land in adjacent regions, keeping cut edges short.
        region_of = {
            c: regions[c % len(regions)] for c in range(n_clusters)
        }

        def candidates(state: PlacementState, nid, lb, ub):
            op = state.dfg.node(nid).op
            home = set(region_of[cluster_of[nid]])
            if fringe:
                for cell in list(home):
                    for n in state.cgra.neighbors_out(cell):
                        home.add(n)
            anchors = state.neighbor_cells(nid)
            ordered = sorted(
                (
                    c
                    for c in range(state.cgra.n_cells)
                    if state.cgra.cell(c).supports(op)
                ),
                key=lambda c: (
                    c not in home,
                    sum(state.cgra.distance(a, c) for a in anchors),
                ),
            )
            # Region cells first; the tail keeps completeness.
            for t in range(lb, ub + 1):
                for c in ordered:
                    yield (c, t)

        mapping = greedy_construct(
            dfg, cgra, ii, priority_order(dfg, by="height"),
            candidates=candidates,
        )
        if mapping is None or mapping.validate(raise_on_error=False):
            return None
        return mapping

    def _map(self, dfg: DFG, cgra: CGRA, ii: int | None) -> Mapping:
        attempts = 0
        for ii_try in self.ii_range(dfg, cgra, ii):
            for fringe in (0, 1):
                attempts += 1
                mapping = self._attempt(dfg, cgra, ii_try, fringe)
                if mapping is not None:
                    return mapping
        raise self.fail(
            f"hierarchical search exhausted on {cgra.name}",
            attempts=attempts,
        )
