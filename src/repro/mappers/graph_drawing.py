"""Graph-drawing-based spatial mapper.

Yoon et al. [23] observed that spatial mapping is a graph-drawing
problem: draw the DFG in the plane so edges are short, then legalise
the drawing onto the grid.  This implementation uses a force-directed
layout (networkx spring embedding, deterministic seed), scales it to
the array, snaps each op to the nearest free compatible cell in
drawing order, and finishes with a greedy local-improvement pass.
"""

from __future__ import annotations

import networkx as nx

from repro.arch.cgra import CGRA
from repro.core.mapper import Mapper, MapperInfo
from repro.core.mapping import Mapping
from repro.core.registry import register
from repro.ir.dfg import DFG
from repro.mappers.spatial_common import (
    candidate_cells,
    finalize,
    spatial_cost,
)

__all__ = ["GraphDrawingMapper"]


@register
class GraphDrawingMapper(Mapper):
    """Force-directed drawing + grid legalisation (Yoon et al. style)."""

    info = MapperInfo(
        name="graph_drawing",
        family="heuristic",
        subfamily="graph drawing",
        kinds=("spatial",),
        solves="binding",
        modeled_after="[23]",
        year=2009,
    )

    def __init__(self, seed: int = 0, *, improve_passes: int = 3) -> None:
        super().__init__(seed)
        self.improve_passes = improve_passes

    def _layout(self, dfg: DFG) -> dict[int, tuple[float, float]]:
        g = nx.Graph()
        nodes = [n.nid for n in dfg.nodes() if not n.op.is_pseudo]
        g.add_nodes_from(nodes)
        for e in dfg.edges():
            if e.src in g and e.dst in g and e.src != e.dst:
                g.add_edge(e.src, e.dst)
        if len(nodes) == 1:
            return {nodes[0]: (0.5, 0.5)}
        pos = nx.spring_layout(g, seed=self.seed, iterations=120)
        xs = [p[0] for p in pos.values()]
        ys = [p[1] for p in pos.values()]
        w = max(xs) - min(xs) or 1.0
        h = max(ys) - min(ys) or 1.0
        return {
            nid: ((p[0] - min(xs)) / w, (p[1] - min(ys)) / h)
            for nid, p in pos.items()
        }

    def _snap(
        self, dfg: DFG, cgra: CGRA, pos: dict[int, tuple[float, float]]
    ) -> dict[int, int] | None:
        """Assign each op to the nearest free compatible cell."""
        binding: dict[int, int] = {}
        used: set[int] = set()
        # Most-constrained ops first, then drawing order.
        order = sorted(
            pos, key=lambda n: (len(candidate_cells(dfg, cgra, n)), n)
        )
        for nid in order:
            fx = pos[nid][0] * (cgra.width - 1)
            fy = pos[nid][1] * (cgra.height - 1)
            options = [
                c for c in candidate_cells(dfg, cgra, nid) if c not in used
            ]
            if not options:
                return None
            cell = min(
                options,
                key=lambda c: (cgra.coords(c)[0] - fx) ** 2
                + (cgra.coords(c)[1] - fy) ** 2,
            )
            binding[nid] = cell
            used.add(cell)
        return binding

    def _improve(
        self, dfg: DFG, cgra: CGRA, binding: dict[int, int]
    ) -> None:
        """Greedy pairwise-swap improvement on wirelength."""
        nodes = list(binding)
        for _ in range(self.improve_passes):
            improved = False
            base = spatial_cost(dfg, cgra, binding)
            for i, a in enumerate(nodes):
                for b in nodes[i + 1 :]:
                    ca, cb = binding[a], binding[b]
                    if cb not in candidate_cells(dfg, cgra, a):
                        continue
                    if ca not in candidate_cells(dfg, cgra, b):
                        continue
                    binding[a], binding[b] = cb, ca
                    cost = spatial_cost(dfg, cgra, binding)
                    if cost < base:
                        base = cost
                        improved = True
                    else:
                        binding[a], binding[b] = ca, cb
            if not improved:
                break

    def _map(self, dfg: DFG, cgra: CGRA, ii: int | None) -> Mapping:
        pos = self._layout(dfg)
        binding = self._snap(dfg, cgra, pos)
        if binding is None:
            raise self.fail(
                f"{dfg.name} does not fit spatially on {cgra.name}"
            )
        self._improve(dfg, cgra, binding)
        mapping = finalize(dfg, cgra, binding, self.info.name)
        if mapping is None:
            # One jittered retry: re-seed the embedding.
            self.seed += 1
            pos = self._layout(dfg)
            binding = self._snap(dfg, cgra, pos)
            if binding is not None:
                self._improve(dfg, cgra, binding)
                mapping = finalize(dfg, cgra, binding, self.info.name)
        if mapping is None:
            raise self.fail("legalised drawing is unroutable")
        return mapping
