"""SAT-based mapper.

Miyasaka et al. [17] encode DFG-onto-CGRA mapping as Boolean
satisfiability.  The adjacency-placement model becomes CNF over this
package's DPLL solver (:mod:`repro.solvers.sat`):

* ``x[v, s]`` — operation ``v`` occupies slot ``s = (cell, cycle)``;
  exactly one slot per operation;
* at most one operation per ``(cell, cycle mod II)`` resource slot;
* per edge, each producer slot implies the disjunction of compatible
  consumer slots (and vice versa).

An UNSAT answer proves the windowed model infeasible for that II and
route-insertion round — the defining property of the exact column of
Table I.
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.core.mapper import Mapper, MapperInfo
from repro.core.mapping import Mapping
from repro.core.registry import register
from repro.ir.dfg import DFG
from repro.mappers import adjplace
from repro.mappers.regraph import split_dist0_edges
from repro.obs.tracer import CANDIDATES_EXPLORED, ROUTING_ATTEMPTS, get_tracer
from repro.solvers.sat import CNF, SatSolver

__all__ = ["SATMapper"]


@register
class SATMapper(Mapper):
    """CNF encoding of the adjacency-placement model."""

    info = MapperInfo(
        name="sat",
        family="exact",
        subfamily="SAT",
        kinds=("temporal",),
        solves="binding+scheduling",
        modeled_after="[17]",
        year=2021,
        exact=True,
    )

    def __init__(
        self,
        seed: int = 0,
        *,
        conflict_limit: int = 200_000,
        max_route_rounds: int = 1,
    ) -> None:
        super().__init__(seed)
        self.conflict_limit = conflict_limit
        self.max_route_rounds = max_route_rounds

    def _solve(
        self, dfg: DFG, cgra: CGRA, ii: int
    ) -> dict[int, adjplace.Slot] | None:
        domains = adjplace.slot_domains(dfg, cgra, ii)
        cnf = CNF()
        var: dict[tuple[int, adjplace.Slot], int] = {}
        for nid, dom in domains.items():
            lits = []
            for s in dom:
                v = cnf.new_var()
                var[(nid, s)] = v
                lits.append(v)
            cnf.exactly_one(lits)

        # Resource exclusivity per (cell, slot mod II).
        by_res: dict[tuple[int, int], list[int]] = {}
        for (nid, (c, t)), v in var.items():
            by_res.setdefault((c, t % ii), []).append(v)
        for lits in by_res.values():
            if len(lits) > 1:
                cnf.at_most_one(lits)

        # Edge compatibility, implication form in both directions.
        for e in adjplace.real_edges(dfg):
            lat = dfg.node(e.src).op.latency
            if e.src == e.dst:
                for s in domains[e.src]:
                    if not adjplace.compatible(cgra, ii, e, lat, s, s):
                        cnf.add(-var[(e.src, s)])
                continue
            for su in domains[e.src]:
                support = [
                    var[(e.dst, sv)]
                    for sv in domains[e.dst]
                    if adjplace.compatible(cgra, ii, e, lat, su, sv)
                ]
                if support:
                    cnf.implies_any(var[(e.src, su)], support)
                else:
                    cnf.add(-var[(e.src, su)])
            for sv in domains[e.dst]:
                support = [
                    var[(e.src, su)]
                    for su in domains[e.src]
                    if adjplace.compatible(cgra, ii, e, lat, su, sv)
                ]
                if support:
                    cnf.implies_any(var[(e.dst, sv)], support)
                else:
                    cnf.add(-var[(e.dst, sv)])

        res = SatSolver(cnf).solve(conflict_limit=self.conflict_limit)
        if not res.sat:
            return None
        assign: dict[int, adjplace.Slot] = {}
        for (nid, s), v in var.items():
            if res.assignment[v]:
                assign[nid] = s
        return assign

    def _map(self, dfg: DFG, cgra: CGRA, ii: int | None) -> Mapping:
        tracer = get_tracer()
        attempts = 0
        for ii_try in self.ii_range(dfg, cgra, ii):
            for rounds in range(self.max_route_rounds + 1):
                attempts += 1
                work = (
                    dfg if rounds == 0 else split_dist0_edges(dfg, rounds)
                )
                with tracer.span("route_round", round=rounds):
                    tracer.count(CANDIDATES_EXPLORED, work.op_count())
                    assign = self._solve(work, cgra, ii_try)
                    if assign is None:
                        continue
                    tracer.count(ROUTING_ATTEMPTS)
                    mapping = adjplace.build_mapping(
                        work, cgra, ii_try, assign, self.info.name
                    )
                if not mapping.validate(raise_on_error=False):
                    return mapping
        raise self.fail(
            f"UNSAT for every windowed model on {cgra.name}",
            attempts=attempts,
        )
