"""SAT-based mapper.

Miyasaka et al. [17] encode DFG-onto-CGRA mapping as Boolean
satisfiability.  The adjacency-placement model becomes CNF over this
package's CDCL solver (:mod:`repro.solvers.sat`):

* ``x[v, s]`` — operation ``v`` occupies slot ``s = (cell, cycle)``;
  exactly one slot per operation;
* at most one operation per ``(cell, cycle mod II)`` resource slot;
* per edge, each producer slot implies the disjunction of compatible
  consumer slots (and vice versa).

An UNSAT answer proves the windowed model infeasible for that II and
route-insertion round — the defining property of the exact column of
Table I.  A *conflict-limit* overrun, by contrast, leaves the II
**undetermined**: the mapper still escalates, but reports that
infeasibility was not proven.

The II escalation is **incremental** (SAT-MapIt-style): one CDCL
instance per route-insertion round persists across II values.  Slot
variables are shared between IIs (same ``(op, cell, cycle)`` meaning),
each II's constraints are guarded by a fresh selector literal, and the
solve runs under ``assumptions=[selector]`` — so learned clauses,
variable activities, and saved phases carry over instead of being
rebuilt from scratch at every II.  ``engine="dpll"`` selects the
retained non-incremental DPLL reference (the baseline the benchmark
and equivalence suites compare against).
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.core.mapper import Mapper, MapperInfo
from repro.core.mapping import Mapping
from repro.core.registry import register
from repro.ir.dfg import DFG
from repro.mappers import adjplace
from repro.mappers.regraph import split_dist0_edges
from repro.obs.tracer import CANDIDATES_EXPLORED, ROUTING_ATTEMPTS, get_tracer
from repro.solvers.sat import CNF, DPLLSolver, SatSolver

__all__ = ["SATMapper"]


class _IncrementalModel:
    """One CNF/CDCL pair reused across the II escalation of one DFG.

    Slot variables are allocated once per ``(op, cell, cycle)`` triple;
    the per-II constraints (exactly-one over that II's domain, folded
    resource exclusivity, edge compatibility) are all guarded by a
    per-II selector literal.  Escalating retires the old selector with
    a unit clause and encodes the next II on top of the shared state.
    """

    def __init__(self) -> None:
        self.cnf = CNF()
        self.solver = SatSolver(self.cnf)
        self.slot_var: dict[tuple[int, int, int], int] = {}
        self.op_slots: dict[int, list[tuple[int, int]]] = {}
        self.selector: int | None = None

    def encode_ii(
        self, dfg: DFG, cgra: CGRA, ii: int
    ) -> tuple[int, dict[tuple[int, adjplace.Slot], int]]:
        """Guarded encoding for one II; returns (selector, var map)."""
        cnf = self.cnf
        if self.selector is not None:
            cnf.add(-self.selector)  # retire the previous II permanently
        sel = cnf.new_var()
        self.selector = sel

        domains = adjplace.slot_domains(dfg, cgra, ii)
        var: dict[tuple[int, adjplace.Slot], int] = {}
        for nid, dom in domains.items():
            lits = []
            for s in dom:
                key = (nid, s[0], s[1])
                v = self.slot_var.get(key)
                if v is None:
                    v = cnf.new_var()
                    self.slot_var[key] = v
                    self.op_slots.setdefault(nid, []).append(s)
                var[(nid, s)] = v
                lits.append(v)
            cnf.exactly_one(lits, guard=sel)
            # Slots introduced by earlier IIs but outside this II's
            # domain must be off while this selector is active.
            dom_set = set(dom)
            for s in self.op_slots[nid]:
                if s not in dom_set:
                    cnf.add(-sel, -self.slot_var[(nid, s[0], s[1])])

        # Resource exclusivity per (cell, slot mod II).
        by_res: dict[tuple[int, int], list[int]] = {}
        for (nid, (c, t)), v in var.items():
            by_res.setdefault((c, t % ii), []).append(v)
        for lits in by_res.values():
            if len(lits) > 1:
                cnf.at_most_one(lits, guard=sel)

        # Edge compatibility, implication form in both directions.
        for e in adjplace.real_edges(dfg):
            lat = dfg.node(e.src).op.latency
            if e.src == e.dst:
                for s in domains[e.src]:
                    if not adjplace.compatible(cgra, ii, e, lat, s, s):
                        cnf.add(-sel, -var[(e.src, s)])
                continue
            for su in domains[e.src]:
                support = [
                    var[(e.dst, sv)]
                    for sv in domains[e.dst]
                    if adjplace.compatible(cgra, ii, e, lat, su, sv)
                ]
                if support:
                    cnf.implies_any(var[(e.src, su)], support, guard=sel)
                else:
                    cnf.add(-sel, -var[(e.src, su)])
            for sv in domains[e.dst]:
                support = [
                    var[(e.src, su)]
                    for su in domains[e.src]
                    if adjplace.compatible(cgra, ii, e, lat, su, sv)
                ]
                if support:
                    cnf.implies_any(var[(e.dst, sv)], support, guard=sel)
                else:
                    cnf.add(-sel, -var[(e.dst, sv)])
        return sel, var


@register
class SATMapper(Mapper):
    """CNF encoding of the adjacency-placement model."""

    info = MapperInfo(
        name="sat",
        family="exact",
        subfamily="SAT",
        kinds=("temporal",),
        solves="binding+scheduling",
        modeled_after="[17]",
        year=2021,
        exact=True,
    )

    def __init__(
        self,
        seed: int = 0,
        *,
        conflict_limit: int = 200_000,
        max_route_rounds: int = 1,
        engine: str = "cdcl",
    ) -> None:
        super().__init__(seed)
        if engine not in ("cdcl", "dpll"):
            raise ValueError(f"unknown SAT engine {engine!r}")
        self.conflict_limit = conflict_limit
        self.max_route_rounds = max_route_rounds
        self.engine = engine

    def cache_token(self) -> str:
        return (
            f"engine={self.engine};climit={self.conflict_limit}"
            f";rounds={self.max_route_rounds}"
        )

    # -- non-incremental reference path --------------------------------
    def _solve_dpll(
        self, dfg: DFG, cgra: CGRA, ii: int
    ) -> tuple[dict[int, adjplace.Slot] | None, bool]:
        """Fresh DPLL encode-and-solve (the retained baseline)."""
        domains = adjplace.slot_domains(dfg, cgra, ii)
        cnf = CNF()
        var: dict[tuple[int, adjplace.Slot], int] = {}
        for nid, dom in domains.items():
            lits = []
            for s in dom:
                v = cnf.new_var()
                var[(nid, s)] = v
                lits.append(v)
            cnf.exactly_one(lits)

        by_res: dict[tuple[int, int], list[int]] = {}
        for (nid, (c, t)), v in var.items():
            by_res.setdefault((c, t % ii), []).append(v)
        for lits in by_res.values():
            if len(lits) > 1:
                cnf.at_most_one(lits)

        for e in adjplace.real_edges(dfg):
            lat = dfg.node(e.src).op.latency
            if e.src == e.dst:
                for s in domains[e.src]:
                    if not adjplace.compatible(cgra, ii, e, lat, s, s):
                        cnf.add(-var[(e.src, s)])
                continue
            for su in domains[e.src]:
                support = [
                    var[(e.dst, sv)]
                    for sv in domains[e.dst]
                    if adjplace.compatible(cgra, ii, e, lat, su, sv)
                ]
                if support:
                    cnf.implies_any(var[(e.src, su)], support)
                else:
                    cnf.add(-var[(e.src, su)])
            for sv in domains[e.dst]:
                support = [
                    var[(e.src, su)]
                    for su in domains[e.src]
                    if adjplace.compatible(cgra, ii, e, lat, su, sv)
                ]
                if support:
                    cnf.implies_any(var[(e.dst, sv)], support)
                else:
                    cnf.add(-var[(e.dst, sv)])

        res = DPLLSolver(cnf).solve(conflict_limit=self.conflict_limit)
        if not res.sat:
            return None, res.limit_reached
        assign: dict[int, adjplace.Slot] = {}
        for (nid, s), v in var.items():
            if res.assignment[v]:
                assign[nid] = s
        return assign, False

    # -- incremental CDCL path -----------------------------------------
    def _solve_cdcl(
        self, model: _IncrementalModel, dfg: DFG, cgra: CGRA, ii: int
    ) -> tuple[dict[int, adjplace.Slot] | None, bool]:
        sel, var = model.encode_ii(dfg, cgra, ii)
        res = model.solver.solve(
            assumptions=[sel], conflict_limit=self.conflict_limit
        )
        if not res.sat:
            return None, res.limit_reached
        assign: dict[int, adjplace.Slot] = {}
        for (nid, s), v in var.items():
            if res.assignment[v]:
                assign[nid] = s
        return assign, False

    def _map(self, dfg: DFG, cgra: CGRA, ii: int | None) -> Mapping:
        tracer = get_tracer()
        attempts = 0
        undetermined = False
        models: dict[int, _IncrementalModel] = {}
        works: dict[int, DFG] = {}
        for ii_try in self.ii_range(dfg, cgra, ii):
            for rounds in range(self.max_route_rounds + 1):
                attempts += 1
                work = works.get(rounds)
                if work is None:
                    work = (
                        dfg if rounds == 0 else split_dist0_edges(dfg, rounds)
                    )
                    works[rounds] = work
                with tracer.span("route_round", round=rounds):
                    tracer.count(CANDIDATES_EXPLORED, work.op_count())
                    if self.engine == "dpll":
                        assign, limited = self._solve_dpll(
                            work, cgra, ii_try
                        )
                    else:
                        model = models.get(rounds)
                        if model is None:
                            model = models[rounds] = _IncrementalModel()
                        assign, limited = self._solve_cdcl(
                            model, work, cgra, ii_try
                        )
                    undetermined = undetermined or limited
                    if assign is None:
                        continue
                    tracer.count(ROUTING_ATTEMPTS)
                    mapping = adjplace.build_mapping(
                        work, cgra, ii_try, assign, self.info.name
                    )
                if not mapping.validate(raise_on_error=False):
                    return mapping
        if undetermined:
            raise self.fail(
                "undetermined: the conflict limit was reached before"
                f" infeasibility could be proven on {cgra.name}"
                " (raise conflict_limit to get a proof)",
                attempts=attempts,
            )
        raise self.fail(
            f"UNSAT for every windowed model on {cgra.name}",
            attempts=attempts,
        )
