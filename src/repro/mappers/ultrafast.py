"""Ultra-fast single-pass scheduler.

Lee & Carlson [16] target *compilation speed* — mapping at run time —
with a single greedy pass and no search: each op takes the first free
compatible slot in a precomputed cell scan order, the time window is
clamped to the II, and failure immediately escalates the II rather
than backtracking.  Quality is traded for orders of magnitude in
mapping time; the Table I companion benchmark shows exactly that
trade, which is the point of including it.
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.core.mapper import Mapper, MapperInfo
from repro.core.mapping import Mapping
from repro.core.registry import register
from repro.ir.dfg import DFG
from repro.mappers.construct import PlacementState, greedy_construct
from repro.mappers.schedule import priority_order

__all__ = ["UltraFastMapper"]


@register
class UltraFastMapper(Mapper):
    """First-fit, no-backtracking, II-escalating scheduler."""

    info = MapperInfo(
        name="ultrafast",
        family="heuristic",
        subfamily="greedy list",
        kinds=("temporal",),
        solves="binding+scheduling",
        modeled_after="[16]",
        year=2021,
    )

    def _map(self, dfg: DFG, cgra: CGRA, ii: int | None) -> Mapping:
        order = priority_order(dfg, by="topo")
        # Static first-fit scan order: row-major, no per-op sorting.
        scan = list(range(cgra.n_cells))

        def candidates(state: PlacementState, nid, lb, ub):
            op = state.dfg.node(nid).op
            for t in range(lb, ub + 1):
                for c in scan:
                    if state.cgra.cell(c).supports(op):
                        yield (c, t)

        attempts = 0
        for ii_try in self.ii_range(dfg, cgra, ii):
            attempts += 1
            mapping = greedy_construct(
                dfg, cgra, ii_try, order,
                candidates=candidates,
                window=max(ii_try, 2),
            )
            if mapping is not None and not mapping.validate(
                raise_on_error=False
            ):
                return mapping
        raise self.fail(
            f"no feasible II for {dfg.name} on {cgra.name}",
            attempts=attempts,
        )
