"""DRESC-style simulated-annealing modulo mapper.

Mei et al.'s DRESC [22] — the compiler behind ADRES, and the reference
point of two decades of temporal mapping — couples modulo scheduling
with simulated annealing: operations move between ``(cell, cycle)``
slots, their edges are ripped up and rerouted, and infeasible
intermediate states are allowed but penalised, so the walk can tunnel
through congestion that defeats constructive methods.  The II search
starts at MII and grows on failure, as in the original.
"""

from __future__ import annotations

import logging
import math
import random

from repro.arch.cgra import CGRA
from repro.core.mapper import Mapper, MapperInfo
from repro.core.mapping import Mapping
from repro.core.registry import register
from repro.ir.dfg import DFG
from repro.mappers.construct import PlacementState
from repro.mappers.schedule import asap, priority_order
from repro.obs.tracer import BACKTRACKS, CANDIDATES_EXPLORED, get_tracer

__all__ = ["DRESCMapper"]

_log = logging.getLogger("repro.mappers.dresc")

UNROUTED_PENALTY = 50.0


@register
class DRESCMapper(Mapper):
    """Simulated annealing over modulo placements with rip-up/reroute."""

    info = MapperInfo(
        name="dresc",
        family="metaheuristic",
        subfamily="SA",
        kinds=("temporal",),
        solves="binding+scheduling",
        modeled_after="[22]",
        year=2002,
    )

    def __init__(
        self,
        seed: int = 0,
        *,
        t_start: float = 20.0,
        t_end: float = 0.2,
        cooling: float = 0.9,
        moves_per_temp: int = 80,
        window: int | None = None,
    ) -> None:
        super().__init__(seed)
        self.t_start = t_start
        self.t_end = t_end
        self.cooling = cooling
        self.moves_per_temp = moves_per_temp
        self.window = window

    # ------------------------------------------------------------------
    def _cost(self, state: PlacementState) -> float:
        return (
            UNROUTED_PENALTY * len(state.unrouted_edges())
            + state.occ.pressure() * 0.01
            + sum(len(p) for p in state.routes.values())
        )

    def _initial(
        self, dfg: DFG, cgra: CGRA, ii: int, rng: random.Random
    ) -> PlacementState | None:
        """Loose initial placement near the ASAP schedule."""
        state = PlacementState(dfg, cgra, ii)
        t0 = asap(dfg, ii)
        order = priority_order(dfg, by="height")
        for nid in order:
            op = dfg.node(nid).op
            anchors = state.neighbor_cells(nid)
            cells = list(cgra.supporting_cells(op))
            rng.shuffle(cells)
            dist = cgra.distance_table()
            cells.sort(
                key=lambda c: sum(dist[a][c] for a in anchors)
            )
            lb, ub = state.time_bounds(nid, 4 * ii)
            lb = max(lb, t0[nid])
            if ub < lb:
                ub = lb + 4 * ii
            placed = False
            for t in range(lb, ub + 1):
                for cell in cells:
                    if state.place_loose(nid, cell, t):
                        placed = True
                        break
                if placed:
                    break
            if not placed:
                return None
        return state

    def _move(
        self, state: PlacementState, nid: int, rng: random.Random,
        window: int,
    ) -> tuple[int, int] | None:
        """Relocate ``nid`` to a random free slot; returns old (cell, t).

        On failure the state is left ripped up — the caller rolls back
        through the undo journal.
        """
        old = (state.binding[nid], state.schedule[nid])
        state.unplace(nid)
        op = state.dfg.node(nid).op
        cells = state.cgra.supporting_cells(op)
        lb, ub = state.time_bounds(nid, window)
        if ub < lb:
            # The op's own window is empty (neighbours must move first);
            # keep exploring around lb so the walk stays alive.
            ub = lb + window
        for _ in range(12):
            cell = rng.choice(cells)
            t = rng.randint(lb, ub)
            if state.place_loose(nid, cell, t):
                return old
        return None

    def _anneal(
        self, dfg: DFG, cgra: CGRA, ii: int, rng: random.Random
    ) -> Mapping | None:
        tracer = get_tracer()
        state = self._initial(dfg, cgra, ii, rng)
        if state is None:
            return None
        window = self.window if self.window is not None else 2 * ii + 2
        nodes = list(state.binding)
        cost = self._cost(state)
        best = cost
        tracer.progress("dresc.best_cost", best)
        temp = self.t_start
        # Rejected moves roll back through the delta-undo journal —
        # rerouted edges may claim the vacated slot, so "move back" is
        # not always possible, but replaying the inverse log is exact
        # and costs a few operations instead of a full state copy.
        state.begin_undo()
        while temp > self.t_end:
            for _ in range(self.moves_per_temp):
                if cost == 0 or not state.unrouted_edges():
                    mapping = state.to_mapping(self.info.name)
                    if not mapping.validate(raise_on_error=False):
                        return mapping
                tracer.count(CANDIDATES_EXPLORED)
                nid = rng.choice(nodes)
                start = state.mark()
                old = self._move(state, nid, rng, window)
                if old is None:
                    state.undo_to(start)
                    continue
                # Opportunistically retry previously stuck edges
                # (try_route itself counts the routing attempts).
                for e in state.unrouted_edges():
                    state.try_route(e)
                new_cost = self._cost(state)
                delta = new_cost - cost
                if delta <= 0 or rng.random() < math.exp(-delta / temp):
                    cost = new_cost
                    state.commit()
                    if cost < best:
                        best = cost
                        tracer.progress("dresc.best_cost", best)
                else:
                    tracer.count(BACKTRACKS)
                    state.undo_to(start)
            temp *= self.cooling
        if not state.unrouted_edges():
            mapping = state.to_mapping(self.info.name)
            if not mapping.validate(raise_on_error=False):
                return mapping
        return None

    def _map(self, dfg: DFG, cgra: CGRA, ii: int | None) -> Mapping:
        rng = random.Random(self.seed)
        attempts = 0
        for ii_try in self.ii_range(dfg, cgra, ii):
            attempts += 1
            mapping = self._anneal(dfg, cgra, ii_try, rng)
            if mapping is not None:
                return mapping
            _log.debug(
                "dresc: II=%d infeasible for %s, escalating",
                ii_try, dfg.name,
            )
        raise self.fail(
            f"annealing found no feasible II for {dfg.name} on {cgra.name}",
            attempts=attempts,
        )
