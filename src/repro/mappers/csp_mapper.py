"""Constraint-programming mapper.

Raffin et al. [43] model scheduling, binding and routing of their
reconfigurable multimedia architecture as a constraint satisfaction
problem and hand it to a CP solver.  Here the adjacency-placement
model becomes a finite-domain CSP over this package's own solver
(:mod:`repro.solvers.csp`): one variable per operation with
``(cell, cycle)`` domains, binary edge-compatibility constraints, and
pairwise FU-slot exclusivity — AC-3 plus MRV/forward-checking do the
rest.
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.core.mapper import Mapper, MapperInfo
from repro.core.mapping import Mapping
from repro.core.registry import register
from repro.ir.dfg import DFG
from repro.mappers import adjplace
from repro.mappers.regraph import split_dist0_edges
from repro.solvers.csp import CSP, CSPTimeout, CSPUnsat

__all__ = ["CSPMapper"]


@register
class CSPMapper(Mapper):
    """Finite-domain CSP formulation (CP, Raffin et al. style)."""

    info = MapperInfo(
        name="csp",
        family="exact",
        subfamily="CP",
        kinds=("temporal",),
        solves="binding+scheduling",
        modeled_after="[43]",
        year=2010,
        exact=True,
    )

    def __init__(
        self,
        seed: int = 0,
        *,
        node_limit: int = 150_000,
        max_route_rounds: int = 1,
    ) -> None:
        super().__init__(seed)
        self.node_limit = node_limit
        self.max_route_rounds = max_route_rounds

    def _solve(
        self,
        dfg: DFG,
        cgra: CGRA,
        ii: int,
        hint: dict[int, adjplace.Slot] | None = None,
    ) -> dict[int, adjplace.Slot] | None:
        domains = adjplace.slot_domains(dfg, cgra, ii)
        csp = CSP(name=f"map_{dfg.name}_ii{ii}")
        for nid, dom in domains.items():
            csp.add_var(f"n{nid}", dom)

        for e in adjplace.real_edges(dfg):
            lat = dfg.node(e.src).op.latency
            if e.src == e.dst:
                # Self-recurrence: slot must be compatible with itself.
                csp.add_constraint(
                    (f"n{e.src}",),
                    lambda s, e=e, lat=lat: adjplace.compatible(
                        cgra, ii, e, lat, s, s
                    ),
                )
                continue
            csp.add_constraint(
                (f"n{e.src}", f"n{e.dst}"),
                lambda su, sv, e=e, lat=lat: adjplace.compatible(
                    cgra, ii, e, lat, su, sv
                ),
                name=f"edge{e.src}->{e.dst}",
            )

        nids = list(domains)
        for i, a in enumerate(nids):
            for b in nids[i + 1 :]:
                csp.add_constraint(
                    (f"n{a}", f"n{b}"),
                    lambda sa, sb: not (
                        sa[0] == sb[0] and sa[1] % ii == sb[1] % ii
                    ),
                    name=f"fu{a},{b}",
                )

        # Value-ordering warm start: a prior assignment (earlier II or
        # round) is tried first wherever its slots survive in the new
        # domains — completeness is unaffected.
        value_hints = None
        if hint is not None:
            value_hints = {f"n{nid}": s for nid, s in hint.items()}
        try:
            sol = csp.solve(
                node_limit=self.node_limit, value_hints=value_hints
            )
        except (CSPUnsat, CSPTimeout):
            return None
        return {nid: sol[f"n{nid}"] for nid in domains}

    def _map(self, dfg: DFG, cgra: CGRA, ii: int | None) -> Mapping:
        attempts = 0
        hints: dict[int, dict[int, adjplace.Slot]] = {}
        for ii_try in self.ii_range(dfg, cgra, ii):
            for rounds in range(self.max_route_rounds + 1):
                attempts += 1
                work = (
                    dfg if rounds == 0 else split_dist0_edges(dfg, rounds)
                )
                assign = self._solve(
                    work, cgra, ii_try, hint=hints.get(rounds)
                )
                if assign is None:
                    continue
                hints[rounds] = assign
                mapping = adjplace.build_mapping(
                    work, cgra, ii_try, assign, self.info.name
                )
                if not mapping.validate(raise_on_error=False):
                    return mapping
        raise self.fail(
            f"CSP proved the windowed model infeasible on {cgra.name}",
            attempts=attempts,
        )
