"""Spatial ILP mapper.

Chin & Anderson's architecture-agnostic ILP [34] (and the
constraint-centric spatial scheduler of Nowatzki et al. [35]) bind a
dataflow graph onto cells exactly: ``x[v, c]`` binaries, one cell per
op, one op per cell, and every edge constrained to land on physically
adjacent cells.  Multi-hop communication is recovered by ROUTE-node
insertion rounds (the ROUTE ops occupy cells, exactly like the route
resources of the published formulations); an infeasible verdict at a
round is *proven* by the branch-and-bound ILP solver.

The objective minimises total edge distance, which for the adjacency
model means preferring same-cell self-edges and tight clusters.
"""

from __future__ import annotations

import logging

from repro.arch.cgra import CGRA
from repro.core.mapper import Mapper, MapperInfo
from repro.core.mapping import Mapping
from repro.core.registry import register
from repro.ir.dfg import DFG
from repro.mappers import adjplace
from repro.mappers.regraph import split_dist0_edges
from repro.mappers.spatial_common import candidate_cells, finalize
from repro.obs.tracer import CANDIDATES_EXPLORED, ROUTING_ATTEMPTS, get_tracer
from repro.solvers.ilp import ILP

__all__ = ["ILPSpatialMapper"]

_log = logging.getLogger("repro.mappers.ilp_spatial")


@register
class ILPSpatialMapper(Mapper):
    """Exact spatial binding via 0/1 ILP."""

    info = MapperInfo(
        name="ilp_spatial",
        family="exact",
        subfamily="ILP",
        kinds=("spatial",),
        solves="binding",
        modeled_after="[34], [35]",
        year=2018,
        exact=True,
    )

    def __init__(
        self,
        seed: int = 0,
        *,
        node_limit: int = 20_000,
        time_limit: float = 20.0,
        max_route_rounds: int = 2,
    ) -> None:
        super().__init__(seed)
        self.node_limit = node_limit
        self.time_limit = time_limit
        self.max_route_rounds = max_route_rounds

    def _solve(self, dfg: DFG, cgra: CGRA) -> dict[int, int] | None:
        nodes = [n.nid for n in dfg.nodes() if not n.op.is_pseudo]
        cands = {nid: candidate_cells(dfg, cgra, nid) for nid in nodes}
        if any(not c for c in cands.values()):
            return None
        ilp = ILP(name=f"spatial_{dfg.name}")
        var: dict[tuple[int, int], int] = {}
        for nid in nodes:
            for c in cands[nid]:
                var[(nid, c)] = ilp.add_var(f"x_{nid}_{c}")
            ilp.add_constraint(
                {var[(nid, c)]: 1.0 for c in cands[nid]}, "==", 1.0
            )
        by_cell: dict[int, list[int]] = {}
        for (nid, c), v in var.items():
            by_cell.setdefault(c, []).append(v)
        for vs in by_cell.values():
            if len(vs) > 1:
                ilp.add_constraint({v: 1.0 for v in vs}, "<=", 1.0)

        for e in adjplace.real_edges(dfg):
            if e.src == e.dst:
                continue  # self-edges live on the op's own cell
            for cu in cands[e.src]:
                support = {
                    var[(e.dst, cv)]: 1.0
                    for cv in cands[e.dst]
                    if cv != cu and cgra.has_link(cu, cv)
                }
                coeffs = dict(support)
                coeffs[var[(e.src, cu)]] = -1.0
                ilp.add_constraint(coeffs, ">=", 0.0)

        ilp.set_objective(
            {
                v: float(cgra.coords(c)[0] + cgra.coords(c)[1]) * 0.01
                for (nid, c), v in var.items()
            }
        )
        res = ilp.solve(
            node_limit=self.node_limit, time_limit=self.time_limit
        )
        if not res.ok:
            return None
        binding: dict[int, int] = {}
        for (nid, c), v in var.items():
            if res.x[v] > 0.5:
                binding[nid] = c
        return binding

    def _map(self, dfg: DFG, cgra: CGRA, ii: int | None) -> Mapping:
        tracer = get_tracer()
        attempts = 0
        for rounds in range(self.max_route_rounds + 1):
            attempts += 1
            if rounds:
                _log.warning(
                    "ilp_spatial: adjacency model infeasible for %s,"
                    " inserting route nodes (round %d)",
                    dfg.name, rounds,
                )
            work = dfg if rounds == 0 else split_dist0_edges(dfg, rounds)
            if work.op_count() > len(cgra.compute_cells()):
                break  # further insertion cannot fit spatially
            with tracer.span(
                "route_round", round=rounds, ops=work.op_count()
            ):
                tracer.count(CANDIDATES_EXPLORED, work.op_count())
                binding = self._solve(work, cgra)
                if binding is None:
                    continue
                tracer.count(ROUTING_ATTEMPTS)
                mapping = finalize(work, cgra, binding, self.info.name)
            if mapping is not None:
                return mapping
        raise self.fail(
            f"ILP proved spatial binding infeasible on {cgra.name}"
            f" (within {self.max_route_rounds} route rounds)",
            attempts=attempts,
        )
