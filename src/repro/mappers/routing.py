"""Routing on the (modulo-folded) time-extended CGRA.

"Routing does not mean creating a new route with a physical wire, but
use an existing link without interfering with already existing
communications" (§II-B).  The :class:`Router` finds, for one DFG edge,
the chain of route/hold steps from the producer's emission to the
consumer's read — respecting everything an :class:`~repro.core
.resources.Occupancy` already carries.

Two disciplines are provided:

* :meth:`Router.find` — breadth-first over time layers, admitting only
  steps whose resources are free: the greedy discipline used by the
  constructive mappers;
* :meth:`Router.find_negotiated` — PathFinder-style: overused
  resources are allowed but penalised by a rising congestion cost, and
  an A* search minimises total cost.  SPR iterates this to resolve
  congestion gradually.

Distance pruning
----------------

Both disciplines prune against the CGRA's cached all-pairs hop-distance
table (:meth:`repro.arch.cgra.CGRA.distance_table`).  A search state at
cell ``c`` with ``r`` time layers left can only terminate usefully when
``dist(c, dst) <= r + 1`` — each layer moves the value at most one hop
and the terminal read grants one more (§II-B's neighbour-visibility
rule).  States violating that bound can never reach an accepting
terminal, and every state reachable *from* a violating state violates
the (one-weaker) bound of its own layer, so dropping them is exact:
the surviving search explores the same states in the same order and
returns byte-identical paths (the equivalence suite asserts this
against ``prune=False``).  In :meth:`Router.find_negotiated` the same
admissible reasoning gives the A* heuristic: every one of the
``span - layer`` remaining layers costs at least 1, and the distance
table supplies the reachability cut (an infinite heuristic).  Ordering
the heap by ``(f, g, state)`` keeps tie-breaking identical to the
plain Dijkstra it replaces.

The number of states actually explored is recorded on the active
trace span under ``candidates_explored``, so ``--profile`` shows the
pruning win directly.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.arch.cgra import CGRA
from repro.arch.tec import HOLD, ROUTE, Step
from repro.core.resources import Occupancy
from repro.mappers.routecore import FlatTemporalEngine, flat_graph
from repro.obs.tracer import CANDIDATES_EXPLORED, get_tracer

__all__ = ["Router", "RouteRequest", "commit_route", "release_route"]

_INF = 10**9


@dataclass(frozen=True)
class RouteRequest:
    """One edge to route.

    ``t_emit`` is the producer's last execution cycle (emission is
    readable from ``t_emit + 1``); ``t_consume`` is the absolute cycle
    the consumer fires.
    """

    value: int
    src_cell: int
    t_emit: int
    dst_cell: int
    t_consume: int


class Router:
    """Per-edge route search over a shared occupancy.

    Args:
        cgra: the target array.
        allow_hold: permit RF-hold steps (cheaper than re-emission).
        max_hold: legacy bound on consecutive holds (kept for
            signature compatibility).
        prune: admissible distance pruning (semantics-preserving; the
            switch exists so the equivalence suite and the ablation
            benchmark can run the exhaustive search).
        engine: ``"flat"`` runs both searches on the flat-array core
            (:mod:`repro.mappers.routecore`: CSR adjacency, Dial
            bucket queue, generation-stamped state arrays) — byte
            identical to ``"scalar"``, the dict + heapq bodies below,
            which remain the executable reference (the PR 2/PR 8
            ``prune=``/``engine=`` precedent).  The flat engine needs
            the flat-index occupancy fast path and steps aside
            automatically for occupancies without it (the dict-keyed
            reference implementation).
    """

    def __init__(
        self,
        cgra: CGRA,
        *,
        allow_hold: bool = True,
        max_hold: int = 64,
        prune: bool = True,
        engine: str = "flat",
    ) -> None:
        self.cgra = cgra
        self.allow_hold = allow_hold
        self.max_hold = max_hold
        self.prune = prune
        self.engine = engine
        self._reach = cgra.reach_lists()
        self._dist = cgra.distance_table()
        self._flat = (
            FlatTemporalEngine(flat_graph(cgra), allow_hold=allow_hold)
            if engine == "flat"
            else None
        )

    # ------------------------------------------------------------------
    def find(
        self, occ: Occupancy, req: RouteRequest
    ) -> list[Step] | None:
        """Feasible step chain, or None.

        The chain covers cycles ``t_emit+1 .. t_consume-1`` (may be
        empty) and ends readable by ``dst_cell`` at ``t_consume``.
        """
        span = req.t_consume - req.t_emit - 1
        if span < 0:
            return None
        if span == 0:
            # Direct read of the emission.
            if self._final_ok(occ, req, Step(req.src_cell, req.t_emit, ROUTE)):
                return []
            return None
        dst = req.dst_cell
        dist_to = self._dist if self.prune else None
        if dist_to is not None and dist_to[req.src_cell][dst] > span + 1:
            return None  # unreachable within the time budget
        if self._flat is not None and hasattr(occ, "time_base"):
            steps, explored = self._flat.find(occ, req, prune=self.prune)
            get_tracer().count(CANDIDATES_EXPLORED, explored)
            return steps
        # BFS over time layers; states are (cell, kind-of-last-step).
        start = (req.src_cell, ROUTE)
        frontier: dict[tuple[int, str], list[Step]] = {start: []}
        explored = 0
        for k in range(span):
            t = req.t_emit + 1 + k
            last = k == span - 1
            # After the step of this layer, span-1-k layers remain plus
            # the terminal-read hop: admissible bound span - k.
            allowed = span - k
            nxt: dict[tuple[int, str], list[Step]] = {}
            for (cell, kind), path in frontier.items():
                for step in self._expansions(occ, req.value, cell, kind, t):
                    if (
                        dist_to is not None
                        and dist_to[step.cell][dst] > allowed
                    ):
                        continue
                    explored += 1
                    key = (step.cell, step.kind)
                    if key in nxt:
                        continue
                    cand = path + [step]
                    if last:
                        if self._final_ok(occ, req, step):
                            get_tracer().count(CANDIDATES_EXPLORED, explored)
                            return cand
                    nxt[key] = cand
            if not nxt:
                get_tracer().count(CANDIDATES_EXPLORED, explored)
                return None
            frontier = nxt
        get_tracer().count(CANDIDATES_EXPLORED, explored)
        return None

    def _expansions(self, occ, value, cell, kind, t):
        """Feasible single steps leaving state (cell, kind) at cycle t.

        Holds come first: parking in the RF is cheaper than burning an
        FU/bypass slot on a same-cell re-emission, and BFS keeps the
        first path found among equals.
        """
        if self.allow_hold and occ.can_hold(value, cell, t):
            yield Step(cell, t, HOLD)
        # Re-emission to self or neighbours.
        for nxt in self._reach[cell]:
            if nxt != cell and not occ.can_use_link(value, cell, nxt, t):
                continue
            if occ.can_route(value, nxt, t):
                yield Step(nxt, t, ROUTE)

    def _final_ok(self, occ, req: RouteRequest, last: Step) -> bool:
        """Can the consumer read the value after ``last``?"""
        if last.kind == HOLD:
            return last.cell == req.dst_cell
        if last.cell == req.dst_cell:
            return True
        return self.cgra.has_link(last.cell, req.dst_cell) and occ.can_use_link(
            req.value, last.cell, req.dst_cell, req.t_consume
        )

    # ------------------------------------------------------------------
    def find_negotiated(
        self,
        occ: Occupancy,
        req: RouteRequest,
        *,
        history: dict | None = None,
        penalty: float = 10.0,
    ) -> tuple[list[Step], float] | None:
        """PathFinder-style search: congestion is costed, not forbidden.

        Returns ``(steps, cost)``; cost counts one per step plus
        ``penalty`` (scaled by historical congestion) for each step
        whose resource is already occupied by another value.  The SPR
        mapper iterates: route all edges, raise history on overused
        slots, repeat until no overuse.
        """
        span = req.t_consume - req.t_emit - 1
        if span < 0:
            return None
        history = history or {}
        dst = req.dst_cell

        def step_cost(step: Step) -> float:
            key = (step.cell, occ.slot(step.time), step.kind)
            base = 1.0 + history.get(key, 0.0)
            free = (
                occ.can_hold(req.value, step.cell, step.time)
                if step.kind == HOLD
                else occ.can_route(req.value, step.cell, step.time)
            )
            return base if free else base + penalty

        if span == 0:
            # Direct read of the emission — same terminal discipline as
            # :meth:`find`: the terminal link must exist *and* be free
            # for this value (congestion on it cannot be negotiated
            # away, there is no step left to pay a penalty on).
            if self._final_ok(occ, req, Step(req.src_cell, req.t_emit, ROUTE)):
                return [], 0.0
            return None

        dist_to = self._dist if self.prune else None
        if dist_to is not None and dist_to[req.src_cell][dst] > span + 1:
            return None
        if self._flat is not None and hasattr(occ, "time_base"):
            found, explored = self._flat.find_negotiated(
                occ, req, prune=self.prune, history=history, penalty=penalty
            )
            get_tracer().count(CANDIDATES_EXPLORED, explored)
            return found
        # A* over (cell, kind, layer): g = accumulated cost, heuristic
        # h = span - layer (each remaining layer costs >= 1; the
        # distance table contributes the reachability cut).  Heap keys
        # (f, g, state) preserve plain-Dijkstra tie-breaking exactly.
        start = (req.src_cell, ROUTE, 0)
        dist: dict[tuple, float] = {start: 0.0}
        prev: dict[tuple, tuple | None] = {start: None}
        steps_at: dict[tuple, Step | None] = {start: None}
        heap = [(float(span), 0.0, start)]
        best: tuple | None = None
        explored = 0
        while heap:
            _f, d, state = heapq.heappop(heap)
            if d > dist.get(state, float("inf")):
                continue
            explored += 1
            cell, kind, layer = state
            if layer == span:
                # Terminal discipline == _final_ok, same as the
                # span==0 path: the terminal link must exist *and* be
                # free for this value — congestion there cannot be
                # negotiated away, there is no step left to penalise.
                last = steps_at[state]
                ok = last is not None and self._final_ok(occ, req, last)
                if ok:
                    best = state
                    break
                continue
            t = req.t_emit + 1 + layer
            candidates = [
                Step(nxt, t, ROUTE) for nxt in self._reach[cell]
            ] + [Step(cell, t, HOLD)]
            nlayer = layer + 1
            h = float(span - nlayer)
            for step in candidates:
                if (
                    dist_to is not None
                    and dist_to[step.cell][dst] > span - layer
                ):
                    continue
                nd = d + step_cost(step)
                ns = (step.cell, step.kind, nlayer)
                if nd < dist.get(ns, float("inf")):
                    dist[ns] = nd
                    prev[ns] = state
                    steps_at[ns] = step
                    heapq.heappush(heap, (nd + h, nd, ns))
        get_tracer().count(CANDIDATES_EXPLORED, explored)
        if best is None:
            return None
        # Reconstruct.
        out: list[Step] = []
        s: tuple | None = best
        while s is not None and steps_at[s] is not None:
            out.append(steps_at[s])
            s = prev[s]
        out.reverse()
        return out, dist[best]


# ---------------------------------------------------------------------------
def commit_route(
    occ: Occupancy, cgra: CGRA, req: RouteRequest, steps: list[Step]
) -> None:
    """Charge a found route (incl. terminal link) to the occupancy."""
    prev_cell = req.src_cell
    for step in steps:
        if step.kind == HOLD:
            occ.add_hold(req.value, step.cell, step.time)
        else:
            if step.cell != prev_cell:
                occ.add_link(req.value, prev_cell, step.cell, step.time)
            occ.add_route(req.value, step.cell, step.time)
        prev_cell = step.cell
    last_kind = steps[-1].kind if steps else ROUTE
    if last_kind == ROUTE and prev_cell != req.dst_cell:
        occ.add_link(req.value, prev_cell, req.dst_cell, req.t_consume)


def release_route(
    occ: Occupancy, cgra: CGRA, req: RouteRequest, steps: list[Step]
) -> None:
    """Undo :func:`commit_route`."""
    prev_cell = req.src_cell
    for step in steps:
        if step.kind == HOLD:
            occ.release_hold(req.value, step.cell, step.time)
        else:
            if step.cell != prev_cell:
                occ.release_link(req.value, prev_cell, step.cell, step.time)
            occ.release_route(req.value, step.cell, step.time)
        prev_cell = step.cell
    last_kind = steps[-1].kind if steps else ROUTE
    if last_kind == ROUTE and prev_cell != req.dst_cell:
        occ.release_link(req.value, prev_cell, req.dst_cell, req.t_consume)
