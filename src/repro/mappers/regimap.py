"""REGIMap-style register-aware mapping.

REGIMap [46] is EPIMap's successor: instead of burning PEs to keep
values alive, it allocates the cells' *register files* for routing in
time, freeing functional units for computation.  Here that is the
constructive engine with holds enabled and a placement preference that
keeps consumers on (or next to) their producers' cells so values
travel through registers, not through the fabric:

* candidate cells are ordered producer-cell-first,
* candidate times prefer the earliest legal cycle (registers absorb
  any slack cheaply).
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.core.mapper import Mapper, MapperInfo
from repro.core.mapping import Mapping
from repro.core.registry import register
from repro.ir.dfg import DFG
from repro.mappers.construct import PlacementState, greedy_construct
from repro.mappers.schedule import priority_order

__all__ = ["RegimapMapper"]


@register
class RegimapMapper(Mapper):
    """Register-file-first placement (REGIMap-style)."""

    info = MapperInfo(
        name="regimap",
        family="heuristic",
        subfamily="register-aware",
        kinds=("temporal",),
        solves="binding",
        modeled_after="[46]",
        year=2013,
    )

    def _map(self, dfg: DFG, cgra: CGRA, ii: int | None) -> Mapping:
        order = priority_order(dfg, by="height")

        def candidates(state: PlacementState, nid, lb, ub):
            cgra_ = state.cgra
            op = state.dfg.node(nid).op
            anchors = state.neighbor_cells(nid)
            cells = [
                c.cid for c in cgra_.cells if c.supports(op)
            ]
            # Producer cells first (registers!), then by distance.
            anchor_set = set(anchors)

            def key(c: int) -> tuple:
                return (
                    0 if c in anchor_set else 1,
                    sum(cgra_.distance(a, c) for a in anchors),
                )

            cells.sort(key=key)
            for t in range(lb, ub + 1):
                for c in cells:
                    yield (c, t)

        attempts = 0
        for ii_try in self.ii_range(dfg, cgra, ii):
            attempts += 1
            mapping = greedy_construct(
                dfg, cgra, ii_try, order, candidates=candidates
            )
            if mapping is not None and not mapping.validate(
                raise_on_error=False
            ):
                return mapping
        raise self.fail(
            f"no feasible II for {dfg.name} on {cgra.name}",
            attempts=attempts,
        )
