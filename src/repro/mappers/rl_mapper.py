"""Reinforcement-learning mapper — the survey's §IV-A trend, working.

"The methods based on artificial intelligence and machine learning are
clearly interesting trails [74]."  Liu et al. train an agent to place
DFG nodes on a CGRA; this implementation keeps the learning loop in
its simplest honest form — a tabular policy-gradient (REINFORCE)
placement agent:

* an episode walks the operations in priority order and *samples* a
  cell for each from a per-step softmax policy; the scheduler assigns
  the earliest cycle from which the constructive engine can route;
* the reward combines success, route cost, and schedule compactness;
* the policy logits are updated with the advantage against a running
  baseline, so placements that route cheaply become more likely.

No neural network is needed at this problem size — the point
reproduced is the *method family*: mapping quality improving across
episodes from reward feedback rather than from hand-written cost
functions.  Like all stochastic mappers here it is seeded and
deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.arch.cgra import CGRA
from repro.core.mapper import Mapper, MapperInfo
from repro.core.mapping import Mapping
from repro.core.registry import register
from repro.ir.dfg import DFG
from repro.mappers.construct import PlacementState
from repro.mappers.schedule import priority_order

__all__ = ["RLMapper"]


@register
class RLMapper(Mapper):
    """Tabular REINFORCE placement agent."""

    info = MapperInfo(
        name="rl",
        family="metaheuristic",
        subfamily="RL",
        kinds=("temporal",),
        solves="binding+scheduling",
        modeled_after="[74]",
        year=2019,
    )

    def __init__(
        self,
        seed: int = 0,
        *,
        episodes: int = 120,
        lr: float = 0.4,
        explore_temp: float = 1.0,
    ) -> None:
        super().__init__(seed)
        self.episodes = episodes
        self.lr = lr
        self.explore_temp = explore_temp

    # ------------------------------------------------------------------
    def _episode(
        self,
        dfg: DFG,
        cgra: CGRA,
        ii: int,
        order: list[int],
        cand: dict[int, list[int]],
        logits: dict[int, np.ndarray],
        rng: np.random.Generator,
        *,
        greedy: bool = False,
    ) -> tuple[float, Mapping | None, dict[int, int]]:
        """One placement episode; returns (reward, mapping, actions)."""
        state = PlacementState(dfg, cgra, ii)
        window = 2 * ii + 2
        actions: dict[int, int] = {}
        placed = 0
        for nid in order:
            z = logits[nid] / self.explore_temp
            p = np.exp(z - z.max())
            p /= p.sum()
            if greedy:
                choice_order = np.argsort(-p)
            else:
                choice_order = rng.choice(
                    len(p), size=len(p), replace=False, p=p
                )
            lb, ub = state.time_bounds(nid, window)
            done = False
            if lb <= ub:
                for idx in choice_order:
                    cell = cand[nid][int(idx)]
                    for t in range(lb, ub + 1):
                        if state.place(nid, cell, t):
                            actions[nid] = int(idx)
                            done = True
                            break
                    if done:
                        break
                    if not greedy:
                        break  # sampled cell failed: end of episode
            if not done:
                # Failure reward scales with progress so early episodes
                # still rank partial placements.
                return placed / len(order) - 1.0, None, actions
            placed += 1
        mapping = state.to_mapping(self.info.name)
        if mapping.validate(raise_on_error=False):
            return -0.5, None, actions
        # Success: prefer few route steps and short schedules.
        reward = (
            2.0
            - 0.05 * mapping.route_step_count()
            - 0.02 * mapping.schedule_length
        )
        return reward, mapping, actions

    def _train(
        self, dfg: DFG, cgra: CGRA, ii: int, rng: np.random.Generator
    ) -> Mapping | None:
        order = priority_order(dfg, by="height")
        cand = {
            nid: [
                c.cid for c in cgra.cells
                if c.supports(dfg.node(nid).op)
            ]
            for nid in order
        }
        if any(not cs for cs in cand.values()):
            return None
        logits = {
            nid: np.zeros(len(cand[nid])) for nid in order
        }
        baseline = 0.0
        best: tuple[float, Mapping] | None = None
        for ep in range(self.episodes):
            reward, mapping, actions = self._episode(
                dfg, cgra, ii, order, cand, logits, rng
            )
            if mapping is not None and (
                best is None or reward > best[0]
            ):
                best = (reward, mapping)
                if mapping.route_step_count() == 0:
                    return mapping  # nothing left for learning to win
            advantage = reward - baseline
            baseline += 0.1 * (reward - baseline)
            # REINFORCE update on the sampled actions.
            for nid, idx in actions.items():
                z = logits[nid] / self.explore_temp
                p = np.exp(z - z.max())
                p /= p.sum()
                grad = -p
                grad[idx] += 1.0
                logits[nid] += self.lr * advantage * grad
        # A final greedy rollout of the learned policy.
        _, mapping, _ = self._episode(
            dfg, cgra, ii, order, cand, logits, rng, greedy=True
        )
        if mapping is not None and (best is None or True):
            if best is None or mapping.route_step_count() <= (
                best[1].route_step_count()
            ):
                return mapping
        return best[1] if best else None

    def _map(self, dfg: DFG, cgra: CGRA, ii: int | None) -> Mapping:
        rng = np.random.default_rng(self.seed)
        attempts = 0
        for ii_try in self.ii_range(dfg, cgra, ii):
            attempts += 1
            mapping = self._train(dfg, cgra, ii_try, rng)
            if mapping is not None:
                return mapping
        raise self.fail(
            f"policy never learned a feasible placement on {cgra.name}",
            attempts=attempts,
        )
