"""Clustered two-phase spatial placement for large fabrics.

The flat annealer (:mod:`repro.mappers.sa_spatial`) is the survey's
4x4-class workhorse; past ~100 ops on a 16x16 array its random walk
stops converging inside any reasonable budget.  This mapper is the
standard escape hatch the scalability literature converged on
(HiMap [26]; the thunder/pnr two-level flow): solve placement twice,
at two granularities —

1. **Partition** — carve the DFG into connectivity-dense clusters via
   recursive min-cut bisection with Fiduccia–Mattheyses refinement
   (:mod:`repro.mappers.partition`), each cluster small enough for one
   ``region x region`` fabric block.
2. **Global place** — tile the fabric into region blocks, walk them in
   snake order, and seed each cluster's ops around its block's
   centroid (nearest free supporting cell).  Consecutive clusters are
   connectivity-close by construction, so the seed already pays most
   of the wirelength bill.
3. **Refine** — a delta-cost anneal over the *whole* fabric (moves
   freely cross cluster boundaries), scoring a batch of candidate
   cells per move through :mod:`repro.mappers.batchcost` — the
   numpy-vectorized evaluator by default, the scalar reference on
   request, bit-identical either way.

Routing failures do not discard the placement: the router reports
every unroutable edge (:func:`route_spatial_partial`), the evaluator's
weight for each is escalated, and a short reheated anneal pulls
exactly those endpoints together before the next attempt.
"""

from __future__ import annotations

import logging
import math
import random

from repro.arch.cgra import CGRA
from repro.arch.tec import Step
from repro.core.mapper import Mapper, MapperInfo
from repro.core.mapping import Mapping
from repro.core.registry import register
from repro.ir.dfg import DFG, Edge
from repro.mappers.batchcost import DeltaCostEvaluator, make_evaluator
from repro.mappers.partition import partition
from repro.mappers.spatial_common import (
    candidate_cells,
    route_negotiated,
    route_spatial_partial,
)
from repro.obs.tracer import (
    BACKTRACKS,
    CANDIDATES_EXPLORED,
    ROUTING_ATTEMPTS,
    get_tracer,
)

__all__ = ["ClusteredSpatialMapper"]

_log = logging.getLogger("repro.mappers.cluster")


def snake_cells(
    cgra: CGRA, skip_columns: frozenset[int] = frozenset()
) -> list[int]:
    """Cell ids along a height-2 serpentine curve, channels excluded.

    The grid is walked in two-row bands, zig-zagging vertically within
    each band while advancing horizontally (bands alternate direction):
    consecutive slots are mesh-adjacent within a band, and at most two
    hops apart at a band seam (a zig-zag over an even column count
    must exit a band on the row it entered), so a chain of ops laid
    contiguously along the curve embeds with near-zero stretch — the
    rare seam edge has a free-cell detour one hop off its straight
    path.  Columns in
    ``skip_columns`` are left out — the placer reserves them as free
    *routing channels*; an edge that jumps a channel is two hops apart
    with the free channel cell exactly on its straight path, which is
    as routable as a stretched edge can be.  Odd trailing rows fall
    back to a single-row walk.
    """
    cols = [x for x in range(cgra.width) if x not in skip_columns]
    out: list[int] = []
    band = 0
    for y0 in range(0, cgra.height, 2):
        xs = cols if band % 2 == 0 else list(reversed(cols))
        if y0 + 1 >= cgra.height:  # odd trailing row
            out.extend(cgra.cell_at(x, y0).cid for x in xs)
        else:
            for k, x in enumerate(xs):
                ys = (y0, y0 + 1) if k % 2 == 0 else (y0 + 1, y0)
                out.extend(cgra.cell_at(x, y).cid for y in ys)
        band += 1
    return out


def channel_columns(
    cgra: CGRA, n_ops: int, *, cap: int | None = None
) -> frozenset[int]:
    """Columns to reserve as routing channels for an ``n_ops`` seed.

    As many full columns as the free-cell budget affords (capped at
    every other column), spread evenly across the width.  Zero when
    the fabric has no slack to spare.  At generous slack this tends
    toward op columns alternating with free ones — each inter-layer
    hop then has a two-cell corridor right next to it, which is what
    braided (width >= 2) dataflow needs for its crossing edges.

    Narrow fabrics (width < 8) get no channels: losing a full column
    there costs more compactness than the corridor buys, and small
    instances route fine from adjacency alone.  ``cap`` tightens the
    column budget below the structural limit (restarts use it to
    concede channels back to placement).
    """
    if cgra.width < 8:
        return frozenset()
    spare = cgra.n_cells - n_ops
    # At most a quarter of the width: more channels squeeze the ops
    # into few columns, stacking them along the fabric's edge columns
    # where each has a single free neighbour — the corridors those
    # edges then *must* share become structurally over-subscribed.
    n = min(spare // max(1, cgra.height), cgra.width // 4)
    if cap is not None:
        n = min(n, max(0, cap))
    while n > 0 and n_ops > cgra.n_cells - n * cgra.height:
        n -= 1
    return frozenset(
        cgra.width * (i + 1) // (n + 1) for i in range(n)
    )


def dataflow_depth(dfg: DFG) -> dict[int, int]:
    """Topological depth of each node over same-iteration edges.

    Loop-carried edges (``dist > 0``) are ignored — a spatial binding
    has no time axis, but laying ops out in dataflow order still keeps
    producers and consumers curve-adjacent.
    """
    depth: dict[int, int] = {}
    for nid in dfg.topo_order():
        depth[nid] = max(
            (
                depth[e.src] + 1
                for e in dfg.in_edges(nid)
                if e.dist == 0 and e.src in depth
            ),
            default=0,
        )
    return depth


def near_cells(cgra: CGRA, radius: int = 2) -> list[list[int]]:
    """Per cell: the cells within ``radius`` outgoing hops, sorted by
    (hop distance, cell id).  Small BFS per cell — the refinement
    walk's local candidate pools."""
    out: list[list[int]] = []
    for c in range(cgra.n_cells):
        dist = {c: 0}
        frontier = [c]
        for d in range(1, radius + 1):
            nxt = []
            for u in frontier:
                for v in cgra.neighbors_out(u):
                    if v not in dist:
                        dist[v] = d
                        nxt.append(v)
            frontier = nxt
        out.append(sorted(dist, key=lambda v: (dist[v], v)))
    return out


@register
class ClusteredSpatialMapper(Mapper):
    """Partition -> centroid-seeded global place -> batched SA refine."""

    info = MapperInfo(
        name="cluster",
        family="metaheuristic",
        subfamily="two-phase",
        kinds=("spatial",),
        solves="binding",
        modeled_after="[26], [32]",
        year=2021,
    )

    def __init__(
        self,
        seed: int = 0,
        *,
        region: int = 4,
        batch: int = 8,
        t_start: float = 2.0,
        t_end: float = 0.05,
        cooling: float = 0.9,
        moves_per_temp: int | None = None,
        restarts: int = 3,
        repair_rounds: int = 4,
        vectorized: bool = True,
        route_engine: str = "flat",
    ) -> None:
        super().__init__(seed)
        self.region = region
        self.batch = batch
        self.t_start = t_start
        self.t_end = t_end
        self.cooling = cooling
        self.moves_per_temp = moves_per_temp
        self.restarts = restarts
        self.repair_rounds = repair_rounds
        self.vectorized = vectorized
        self.route_engine = route_engine

    def cache_token(self) -> str:
        # vectorized is deliberately absent: both backends produce the
        # same mapping (the bit-identity the equivalence suite checks),
        # so they may alias in the cache.  route_engine is present:
        # the flat engine's incremental rip-up may settle on different
        # (equally legal) routes than the scalar full re-route.
        return (
            f"region={self.region};batch={self.batch};"
            f"t={self.t_start}:{self.t_end}:{self.cooling};"
            f"moves={self.moves_per_temp};restarts={self.restarts};"
            f"repair={self.repair_rounds};route={self.route_engine}"
        )

    # -- phase 2: global seed ------------------------------------------
    def seed_binding(
        self,
        dfg: DFG,
        cgra: CGRA,
        clusters: list[list[int]],
        *,
        channels: frozenset[int] | None = None,
    ) -> dict[int, int] | None:
        """Analytical seed: embed the dataflow order along the snake.

        Every op gets an ideal *position* on the serpentine curve — its
        rank in a (depth, cluster, id) sort, packed contiguously so
        consecutive ops are mesh-adjacent — and is seeded on the
        nearest free supporting cell to that position's coordinates.
        Producers precede consumers on the curve, parallel strands the
        partitioner separated stay separated within a depth level, and
        the fabric's slack is concentrated into free channel columns
        the router can rely on instead of being smeared between ops.
        """
        total = sum(len(c) for c in clusters)
        if total > cgra.n_cells:
            return None
        # Curve order is dataflow depth first — every edge points
        # "forward" along the curve — with the bisection-tree cluster
        # rank as tiebreak inside a depth level, so strands the
        # partitioner separated do not interleave by node id.
        depth = dataflow_depth(dfg)
        crank = {
            nid: k for k, c in enumerate(clusters) for nid in c
        }
        seq = sorted(
            crank,
            key=lambda n: (depth[n], crank[n], n),
        )
        if channels is None:
            channels = channel_columns(cgra, total)
        order = snake_cells(cgra, channels)
        free = set(range(cgra.n_cells))
        # Slack beyond the channels is spread as gaps along the curve.
        # A skipped curve slot sits on a shortest path between its two
        # neighbours, so every gap doubles as a ready-made route cell
        # for the edge that jumps it.
        # Capped: a gap at most every fourth slot.  Beyond that the
        # "gaps double as route cells" argument inverts — consecutive
        # ops stop being curve-adjacent at all and every edge starts
        # stretched.  Low-utilisation slack is better left pooled in
        # whole free regions than smeared between every op pair.
        stretch = min(len(order) / max(1, total), 1.25)
        binding: dict[int, int] = {}
        for rank, nid in enumerate(seq):
            spot = order[min(int(rank * stretch), len(order) - 1)]
            ax, ay = cgra.coords(spot)
            options = [
                c
                for c in candidate_cells(dfg, cgra, nid)
                if c in free
            ]
            if not options:
                return None
            cell = min(
                options,
                key=lambda c: (
                    abs(cgra.coords(c)[0] - ax)
                    + abs(cgra.coords(c)[1] - ay),
                    c,
                ),
            )
            binding[nid] = cell
            free.discard(cell)
        return binding

    # -- phase 3: batched refinement -----------------------------------
    def refine(
        self,
        ev: DeltaCostEvaluator,
        cells,
        rng: random.Random,
        *,
        t_start: float | None = None,
        focus: list[int] | None = None,
        channels: frozenset[int] = frozenset(),
        journal: list | None = None,
    ) -> None:
        """Anneal ``cells`` in place with batch-scored moves.

        Every RNG draw and every control decision happens here, on
        plain python ints — the evaluator only supplies integer costs —
        so a seeded walk is bit-identical across the scalar and
        vectorized backends (``journal`` records each proposal for the
        equivalence suite: ``(node, target, delta, accepted)``).
        """
        tracer = get_tracer()
        n = len(ev.nodes)
        if n < 2:
            return
        dfg, cgra = ev.dfg, ev.cgra
        # Candidate pools exclude the reserved channel columns (the
        # router's budget); an op only supported inside a channel
        # keeps its full pool rather than becoming immovable.
        options = []
        for nid in ev.nodes:
            opts = candidate_cells(dfg, cgra, nid)
            if channels:
                kept = [
                    c
                    for c in opts
                    if cgra.coords(c)[0] not in channels
                ]
                if kept:
                    opts = kept
            options.append(opts)
        support = [set(o) for o in options]
        near = near_cells(cgra)
        owner = {int(cells[i]): i for i in range(n)}
        moves = self.moves_per_temp or max(40, 2 * n)
        batch = self.batch
        temp = self.t_start if t_start is None else t_start
        while temp > self.t_end:
            for _ in range(moves):
                tracer.count(CANDIDATES_EXPLORED)
                # Repair rounds concentrate half the proposals on the
                # nodes whose edges the router rejected.
                if focus and rng.random() < 0.5:
                    i = focus[rng.randrange(len(focus))]
                else:
                    i = rng.randrange(n)
                # Mostly *local* proposals — cells within two hops of
                # a connected neighbour's cell — with a global-sample
                # escape hatch.  Uniform proposals over a big fabric
                # almost never improve, so locality is where the
                # large-array convergence comes from.
                nbrs = ev.neighbors[i]
                opts = options[i]
                if nbrs and rng.random() < 0.8:
                    a = nbrs[rng.randrange(len(nbrs))]
                    pool = [
                        c
                        for c in near[int(cells[a])]
                        if c in support[i]
                    ]
                    if pool:
                        opts = pool
                cands = (
                    opts
                    if len(opts) <= batch
                    else rng.sample(opts, batch)
                )
                deltas = ev.move_deltas(cells, i, cands)
                # First-min argmin in shared python code: both
                # backends hand back int64-valued sequences, so the
                # chosen index — and thus the walk — is identical.
                best_k = 0
                best_d = int(deltas[0])
                for k in range(1, len(cands)):
                    d = int(deltas[k])
                    if d < best_d:
                        best_k, best_d = k, d
                target = cands[best_k]
                old = int(cells[i])
                if target == old:
                    if journal is not None:
                        journal.append((i, target, 0, False))
                    continue
                j = owner.get(target)
                if j is None:
                    delta = best_d
                else:
                    if old not in support[j]:
                        if journal is not None:
                            journal.append((i, target, 0, False))
                        continue
                    eids = ev.union_eids(i, j)
                    before = ev.edges_cost(cells, eids)
                    cells[i], cells[j] = target, old
                    delta = ev.edges_cost(cells, eids) - before
                    cells[i], cells[j] = old, target  # undo probe
                accepted = bool(
                    delta <= 0
                    or rng.random() < math.exp(-delta / temp)
                )
                if journal is not None:
                    journal.append((i, target, int(delta), accepted))
                if not accepted:
                    tracer.count(BACKTRACKS)
                    continue
                cells[i] = target
                owner[target] = i
                if j is None:
                    del owner[old]
                else:
                    cells[j] = old
                    owner[old] = j
            temp *= self.cooling

    def _directed_repair(
        self, ev: DeltaCostEvaluator, cells, failed: list[Edge]
    ) -> int:
        """Relocate failed-edge endpoints to their best *free* cell.

        The quench's swaps fix one edge by displacing a well-placed
        neighbour — whack-a-mole at scale.  This pass is the opposite
        trade: deterministic, free cells only (zero collateral), each
        move applied only if the evaluator says the node's whole edge
        star improves.  With the failed edges' weights escalated, that
        test is dominated by exactly the edges the router rejected.
        """
        dfg, cgra = ev.dfg, ev.cgra
        owner = {int(cells[k]): k for k in range(len(ev.nodes))}
        moved = 0
        for e in failed:
            for nid in (e.dst, e.src):
                i = ev.index[nid]
                opts = [
                    c
                    for c in candidate_cells(dfg, cgra, nid)
                    if c not in owner
                ]
                if not opts:
                    continue
                deltas = ev.move_deltas(cells, i, opts)
                best_k = 0
                best_d = int(deltas[0])
                for k in range(1, len(opts)):
                    d = int(deltas[k])
                    if d < best_d:
                        best_k, best_d = k, d
                if best_d < 0:
                    old = int(cells[i])
                    cells[i] = opts[best_k]
                    del owner[old]
                    owner[opts[best_k]] = i
                    moved += 1
        return moved

    # -- driver --------------------------------------------------------
    def _route(
        self,
        dfg: DFG,
        cgra: CGRA,
        ev: DeltaCostEvaluator,
        cells,
        rng,
        channels: frozenset[int] = frozenset(),
    ) -> tuple[dict[int, int], dict[Edge, list[Step]]] | None:
        """Route; on failure escalate the failed edges and re-anneal.

        Monotone: the best-routing placement seen so far is kept as a
        snapshot, and any repair quench that *increases* the failure
        count is rolled back before the next attempt — the escalated
        edge weights persist across rollbacks, so pressure on the
        stubborn edges still accumulates round over round.
        """
        tracer = get_tracer()

        def attempt() -> tuple[dict[int, int], dict, list[Edge]]:
            binding = {
                nid: int(cells[i]) for i, nid in enumerate(ev.nodes)
            }
            tracer.count(ROUTING_ATTEMPTS)
            routes, failed = route_spatial_partial(dfg, cgra, binding)
            if failed:
                # Greedy first-come routing lost to an ordering
                # artifact more often than to the placement: negotiate
                # before blaming (and re-annealing) the placement.
                tracer.count(ROUTING_ATTEMPTS)
                negotiated = route_negotiated(
                    dfg, cgra, binding, engine=self.route_engine
                )
                if negotiated is not None:
                    return binding, negotiated, []
            return binding, routes, failed

        binding, routes, failed = attempt()
        if not failed:
            return binding, routes
        best_cells, best_failed = list(cells), failed
        for round_ in range(self.repair_rounds):
            _log.info(
                "cluster: %d edge(s) unroutable, repair round %d",
                len(best_failed), round_ + 1,
            )
            hot: set[int] = set()
            for e in best_failed:
                # Exponential escalation: by the later rounds a failed
                # edge outweighs everything around it, so shortening
                # it wins any local trade the quench can propose.
                ev.bump_weight(ev.edge_id[e], 2 ** (round_ + 1))
                hot.add(ev.index[e.src])
                hot.add(ev.index[e.dst])
            # Directed pass first (free-cell moves, no collateral);
            # fall back to a cold focused quench only when nothing
            # relocatable is left — the escalated weights make the
            # failed edges the dominant cost terms either way.
            if not self._directed_repair(ev, cells, best_failed):
                self.refine(
                    ev, cells, rng,
                    t_start=max(3 * self.t_end, 0.15),
                    focus=sorted(hot),
                    channels=channels,
                )
            binding, routes, failed = attempt()
            if not failed:
                return binding, routes
            if len(failed) < len(best_failed):
                best_cells, best_failed = list(cells), failed
            else:
                cells[:] = best_cells
        return None

    def _map(self, dfg: DFG, cgra: CGRA, ii: int | None) -> Mapping:
        tracer = get_tracer()
        nodes = [n.nid for n in dfg.nodes() if not n.op.is_pseudo]
        if len(nodes) > cgra.n_cells:
            raise self.fail(
                f"{dfg.name} has {len(nodes)} ops for"
                f" {cgra.n_cells} cells — cannot map spatially"
            )
        rng = random.Random(self.seed)
        with tracer.span("partition"):
            capacity = max(1, self.region * self.region)
            clusters = partition(dfg, capacity)
        n_channels = len(channel_columns(cgra, len(nodes)))
        attempts = 0
        for r in range(self.restarts):
            attempts += 1
            # seed_binding is deterministic, so a bare retry would
            # replay the exact corridor set that just failed.  Each
            # restart concedes one channel column back to placement:
            # a structurally over-subscribed corridor configuration
            # is loosened instead of re-attempted verbatim.
            channels = channel_columns(
                cgra, len(nodes), cap=n_channels - r
            )
            with tracer.span("restart", n=r):
                with tracer.span("global_place"):
                    binding = self.seed_binding(
                        dfg, cgra, clusters, channels=channels
                    )
                if binding is None:
                    raise self.fail(
                        f"{dfg.name} does not fit spatially on"
                        f" {cgra.name}",
                        attempts=attempts,
                    )
                ev = make_evaluator(
                    dfg, cgra, vectorized=self.vectorized
                )
                cells = ev.new_cells(binding)
                _, seed_failed = route_spatial_partial(
                    dfg, cgra, binding
                )
                seed_snap = list(cells)
                with tracer.span("refine"):
                    self.refine(ev, cells, rng, channels=channels)
                    tracer.progress(
                        "cluster.cost", ev.total(cells)
                    )
                # The annealer optimises wirelength, which is only a
                # proxy for routability; if the polish left *more*
                # edges unroutable than the analytical seed, the seed
                # was the better start for repair — fall back to it.
                _, ref_failed = route_spatial_partial(
                    dfg,
                    cgra,
                    {
                        nid: int(cells[i])
                        for i, nid in enumerate(ev.nodes)
                    },
                )
                if len(ref_failed) > len(seed_failed):
                    cells[:] = seed_snap
                with tracer.span("route"):
                    routed = self._route(
                        dfg, cgra, ev, cells, rng, channels
                    )
            if routed is None:
                _log.warning(
                    "cluster: routing failed on restart %d/%d",
                    r + 1, self.restarts,
                )
                continue
            binding, routes = routed
            mapping = Mapping(
                dfg,
                cgra,
                kind="spatial",
                binding=binding,
                routes=routes,
                mapper=self.info.name,
            )
            if not mapping.validate(raise_on_error=False):
                return mapping
        raise self.fail(
            f"routing failed after {self.restarts} two-phase"
            " restarts",
            attempts=attempts,
        )
