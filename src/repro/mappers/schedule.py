"""Scheduling utilities shared by the temporal mappers.

Modulo-aware ASAP/ALAP levels, height-based priorities, and the
operation orders the constructive mappers walk.  Loop-carried edges of
distance ``d`` relax a dependence by ``d * II`` cycles, exactly as in
Rau's modulo scheduling framework.
"""

from __future__ import annotations

from repro.ir.dfg import DFG

__all__ = ["asap", "alap", "heights", "priority_order", "mobility"]


def asap(dfg: DFG, ii: int) -> dict[int, int]:
    """Earliest start cycles honouring dist-relaxed dependences.

    Iterates to a fixed point so loop-carried edges participate; with a
    feasible II (>= RecMII) this converges.
    """
    t = {nid: 0 for nid in dfg}
    changed = True
    guard = 0
    while changed:
        changed = False
        guard += 1
        if guard > len(t) + 10:
            # II below RecMII: carried cycles keep pushing times up.
            break
        for nid in dfg.topo_order():
            for e in dfg.in_edges(nid):
                lat = dfg.node(e.src).op.latency
                lo = t[e.src] + lat - e.dist * ii
                if lo > t[nid]:
                    t[nid] = lo
                    changed = True
    for nid in t:
        t[nid] = max(0, t[nid])
    return t


def alap(dfg: DFG, ii: int, horizon: int) -> dict[int, int]:
    """Latest start cycles for a schedule ending by ``horizon``."""
    t = {nid: horizon for nid in dfg}
    for nid in reversed(dfg.topo_order()):
        lat = dfg.node(nid).op.latency
        for e in dfg.out_edges(nid):
            hi = t[e.dst] - lat + e.dist * ii
            if hi < t[nid]:
                t[nid] = hi
    for nid in t:
        t[nid] = max(0, t[nid])
    return t


def heights(dfg: DFG) -> dict[int, int]:
    """Longest path (in latency) from each node to any sink, dist-0 only.

    The classic list-scheduling priority: schedule tall nodes first.
    """
    h = {nid: 0 for nid in dfg}
    for nid in reversed(dfg.topo_order()):
        lat = dfg.node(nid).op.latency
        for e in dfg.out_edges(nid):
            if e.dist == 0:
                h[nid] = max(h[nid], h[e.dst] + lat)
    return h


def mobility(dfg: DFG, ii: int, horizon: int) -> dict[int, int]:
    """ALAP - ASAP slack per node (0 = on the critical path)."""
    lo = asap(dfg, ii)
    hi = alap(dfg, ii, horizon)
    return {nid: max(0, hi[nid] - lo[nid]) for nid in dfg}


def priority_order(dfg: DFG, *, by: str = "height") -> list[int]:
    """Compute nodes in scheduling order.

    ``by="height"`` — topological order tie-broken by descending
    height (critical-path first); ``by="topo"`` — plain deterministic
    topological order.  Pseudo nodes are excluded (they consume no
    fabric resources).
    """
    if by == "topo":
        return [
            n for n in dfg.topo_order() if not dfg.node(n).op.is_pseudo
        ]
    if by != "height":
        raise ValueError(f"unknown order {by!r}")
    # Kahn's algorithm with a max-height ready queue: topological over
    # dist-0 edges, critical-path-first among the ready set.
    import heapq

    h = heights(dfg)
    indeg = {nid: 0 for nid in dfg}
    for e in dfg.edges():
        if e.dist == 0:
            indeg[e.dst] += 1
    ready = [(-h[n], n) for n, d in indeg.items() if d == 0]
    heapq.heapify(ready)
    order: list[int] = []
    while ready:
        _, nid = heapq.heappop(ready)
        if not dfg.node(nid).op.is_pseudo:
            order.append(nid)
        for e in dfg.out_edges(nid):
            if e.dist == 0:
                indeg[e.dst] -= 1
                if indeg[e.dst] == 0:
                    heapq.heappush(ready, (-h[e.dst], e.dst))
    return order
