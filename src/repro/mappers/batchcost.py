"""Batch delta-cost evaluation for spatial placement walks.

The annealing placers score a move by re-summing the wirelength terms
of the edges incident to the moved ops (:func:`repro.mappers
.spatial_common.spatial_cost` is per-edge, so everything else cancels).
At 4x4 scale a python loop over four edges is fine; at 16x16/32x32 the
walk proposes *batches* of candidate cells per move and the per-edge
python loop becomes the placer's hot path.

This module provides the same evaluator twice:

* :class:`ScalarDeltaCost` — the reference: python loops over edge
  lists, exactly the PR 3 ``incident_edges`` discipline;
* :class:`VectorDeltaCost` — numpy: the binding lives in a flat
  int64 cell array (the same flat, index-computed discipline as the
  slot-major :class:`~repro.core.resources.Occupancy` arrays), the
  all-pairs hop-distance table is a shared ``(n_cells, n_cells)``
  int64 matrix, and a batch of K candidate cells for one op is scored
  as one ``(K, degree)`` fancy-indexed reduction.

Both paths compute in plain integers (hop distances are integers,
edge weights are integers), so their results are **bit-identical** —
not approximately equal — and the clustered placer's walk consumes
the RNG identically whichever backend is active.  The equivalence
suite asserts identical accepted/rejected move sequences.

The numpy distance matrix is memoized at module level per architecture
fingerprint (bounded), mirroring the shared BFS table cache on
:meth:`repro.arch.cgra.CGRA.distance_table`: pool workers and
portfolio entrants racing on the same big fabric build it once.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.arch.cgra import CGRA
from repro.ir.dfg import DFG, Edge

__all__ = [
    "DeltaCostEvaluator",
    "ScalarDeltaCost",
    "VectorDeltaCost",
    "make_evaluator",
    "np_distance_matrix",
]

#: constant cost added per stretched (non-adjacent) edge — see
#: :class:`DeltaCostEvaluator`
STRETCH_PENALTY = 2

#: entries kept in the module-level numpy distance-matrix cache
_NP_DIST_CACHE_SIZE = 8

_np_dist_cache: "OrderedDict[str, np.ndarray]" = OrderedDict()


def np_distance_matrix(cgra: CGRA) -> np.ndarray:
    """The all-pairs hop-distance table as a shared int64 matrix.

    Keyed by architecture fingerprint so equal fabrics (fresh preset
    instances, unpickled copies in pool workers) share one matrix; the
    cache is bounded LRU.  The matrix is read-only by convention.
    """
    from repro.cache.fingerprint import arch_fingerprint

    fp = arch_fingerprint(cgra)
    hit = _np_dist_cache.get(fp)
    if hit is not None:
        _np_dist_cache.move_to_end(fp)
        return hit
    mat = np.asarray(cgra.distance_table(), dtype=np.int64)
    _np_dist_cache[fp] = mat
    while len(_np_dist_cache) > _NP_DIST_CACHE_SIZE:
        _np_dist_cache.popitem(last=False)
    return mat


class DeltaCostEvaluator:
    """Shared precompute: node indexing, edge arrays, per-node incidence.

    The cost model is the spatial wirelength objective with integer
    per-edge weights, plus a constant penalty per *stretched* edge::

        term(d) = 0           if d <= 1
                  d - 1 + P   otherwise        (P = STRETCH_PENALTY)
        cost(cells) = sum over edges e of  w[e] * term(dist(src_cell, dst_cell))

    The wirelength part is :func:`repro.mappers.spatial_common
    .spatial_cost`; the penalty is new: every non-adjacent edge claims
    at least one dedicated route cell, and on a near-full fabric free
    cells — not hops — are the scarce resource, so the placer must
    prefer *zero* stretched edges over many slightly-short ones.

    Weights start at 1; the routing-repair loop raises the weight of
    edges the router could not realise, so the next refinement round
    pulls exactly those endpoints together.
    """

    def __init__(self, dfg: DFG, cgra: CGRA) -> None:
        self.dfg = dfg
        self.cgra = cgra
        self.nodes: list[int] = sorted(
            n.nid for n in dfg.nodes() if not n.op.is_pseudo
        )
        self.index: dict[int, int] = {
            nid: i for i, nid in enumerate(self.nodes)
        }
        self.edges: list[Edge] = [
            e
            for e in dfg.edges()
            if e.src != e.dst
            and e.src in self.index
            and e.dst in self.index
        ]
        self.edge_id: dict[Edge, int] = {
            e: i for i, e in enumerate(self.edges)
        }
        # Per node: edge ids where the node is the source / the dest,
        # and the *other* endpoint's node index, aligned.
        n = len(self.nodes)
        self._src_eids: list[list[int]] = [[] for _ in range(n)]
        self._src_oth: list[list[int]] = [[] for _ in range(n)]
        self._dst_eids: list[list[int]] = [[] for _ in range(n)]
        self._dst_oth: list[list[int]] = [[] for _ in range(n)]
        for eid, e in enumerate(self.edges):
            si, di = self.index[e.src], self.index[e.dst]
            self._src_eids[si].append(eid)
            self._src_oth[si].append(di)
            self._dst_eids[di].append(eid)
            self._dst_oth[di].append(si)
        #: per node index: the node indices it shares an edge with
        #: (sorted, deduped) — the walk's locality anchors
        self.neighbors: list[list[int]] = [
            sorted(set(so) | set(do))
            for so, do in zip(self._src_oth, self._dst_oth)
        ]

    # -- subclass interface -------------------------------------------
    def new_cells(self, binding: dict[int, int]):
        """The binding as this backend's flat node-indexed container."""
        raise NotImplementedError

    def total(self, cells) -> int:
        """Full weighted wirelength of ``cells``."""
        raise NotImplementedError

    def edges_cost(self, cells, eids) -> int:
        """Weighted wirelength restricted to the given edge ids."""
        raise NotImplementedError

    def move_deltas(self, cells, i: int, cands):
        """Cost deltas for relocating node index ``i`` to each candidate
        cell, as a sequence of ints aligned with ``cands``."""
        raise NotImplementedError

    def union_eids(self, i: int, j: int):
        """Sorted distinct edge ids incident to node indices i or j."""
        raise NotImplementedError

    def bump_weight(self, eid: int, add: int = 1) -> None:
        """Raise one edge's weight (routing-repair escalation)."""
        raise NotImplementedError

    def stretched_edges(self, cells) -> list[int]:
        """Edge ids whose endpoints are non-adjacent (term > 0)."""
        raise NotImplementedError


class ScalarDeltaCost(DeltaCostEvaluator):
    """Reference python-loop backend (the PR 3 discipline)."""

    def __init__(self, dfg: DFG, cgra: CGRA) -> None:
        super().__init__(dfg, cgra)
        self._dist = cgra.distance_table()
        self._w = [1] * len(self.edges)
        self._all_eids = [
            sorted(set(se) | set(de))
            for se, de in zip(self._src_eids, self._dst_eids)
        ]

    def new_cells(self, binding: dict[int, int]) -> list[int]:
        return [binding[nid] for nid in self.nodes]

    def total(self, cells) -> int:
        return self.edges_cost(cells, range(len(self.edges)))

    def edges_cost(self, cells, eids) -> int:
        dist, w, idx = self._dist, self._w, self.index
        total = 0
        for eid in eids:
            e = self.edges[eid]
            d = dist[cells[idx[e.src]]][cells[idx[e.dst]]]
            if d > 1:
                total += w[eid] * (d - 1 + STRETCH_PENALTY)
        return total

    def move_deltas(self, cells, i: int, cands) -> list[int]:
        dist, w = self._dist, self._w
        old = cells[i]
        src_pairs = [
            (w[eid], cells[o])
            for eid, o in zip(self._src_eids[i], self._src_oth[i])
        ]
        dst_pairs = [
            (w[eid], cells[o])
            for eid, o in zip(self._dst_eids[i], self._dst_oth[i])
        ]
        P = STRETCH_PENALTY
        old_sum = sum(
            wt * (d - 1 + P)
            for wt, oc in src_pairs
            if (d := dist[old][oc]) > 1
        ) + sum(
            wt * (d - 1 + P)
            for wt, sc in dst_pairs
            if (d := dist[sc][old]) > 1
        )
        out = []
        for c in cands:
            new_sum = sum(
                wt * (d - 1 + P)
                for wt, oc in src_pairs
                if (d := dist[c][oc]) > 1
            ) + sum(
                wt * (d - 1 + P)
                for wt, sc in dst_pairs
                if (d := dist[sc][c]) > 1
            )
            out.append(new_sum - old_sum)
        return out

    def union_eids(self, i: int, j: int) -> list[int]:
        return sorted(set(self._all_eids[i]) | set(self._all_eids[j]))

    def bump_weight(self, eid: int, add: int = 1) -> None:
        self._w[eid] += add

    def stretched_edges(self, cells) -> list[int]:
        dist, idx = self._dist, self.index
        return [
            eid
            for eid, e in enumerate(self.edges)
            if dist[cells[idx[e.src]]][cells[idx[e.dst]]] > 1
        ]


class VectorDeltaCost(DeltaCostEvaluator):
    """numpy backend: flat arrays, batched fancy-indexed reductions."""

    def __init__(self, dfg: DFG, cgra: CGRA) -> None:
        super().__init__(dfg, cgra)
        self._D = np_distance_matrix(cgra)
        m = len(self.edges)
        self._esrc = np.array(
            [self.index[e.src] for e in self.edges], dtype=np.int64
        ).reshape(m)
        self._edst = np.array(
            [self.index[e.dst] for e in self.edges], dtype=np.int64
        ).reshape(m)
        self._w = np.ones(m, dtype=np.int64)
        as_arr = lambda rows: [
            np.array(r, dtype=np.int64) for r in rows
        ]
        self._src_eids_np = as_arr(self._src_eids)
        self._src_oth_np = as_arr(self._src_oth)
        self._dst_eids_np = as_arr(self._dst_eids)
        self._dst_oth_np = as_arr(self._dst_oth)
        self._all_eids_np = [
            np.union1d(se, de)
            for se, de in zip(self._src_eids_np, self._dst_eids_np)
        ]

    def new_cells(self, binding: dict[int, int]) -> np.ndarray:
        return np.array(
            [binding[nid] for nid in self.nodes], dtype=np.int64
        )

    @staticmethod
    def _terms(d: np.ndarray) -> np.ndarray:
        return np.where(d > 1, d - 1 + STRETCH_PENALTY, 0)

    def total(self, cells) -> int:
        d = self._D[cells[self._esrc], cells[self._edst]]
        return int((self._w * self._terms(d)).sum())

    def edges_cost(self, cells, eids) -> int:
        eids = np.asarray(eids, dtype=np.int64)
        if eids.size == 0:
            return 0
        d = self._D[
            cells[self._esrc[eids]], cells[self._edst[eids]]
        ]
        return int((self._w[eids] * self._terms(d)).sum())

    def move_deltas(self, cells, i: int, cands) -> np.ndarray:
        D = self._D
        old = cells[i]
        oc = cells[self._src_oth_np[i]]  # cells of our consumers' side
        sc = cells[self._dst_oth_np[i]]  # cells of our producers' side
        ws = self._w[self._src_eids_np[i]]
        wd = self._w[self._dst_eids_np[i]]
        old_sum = (ws * self._terms(D[old, oc])).sum() + (
            wd * self._terms(D[sc, old])
        ).sum()
        cand = np.asarray(cands, dtype=np.int64)
        new = (
            ws[None, :] * self._terms(D[cand[:, None], oc[None, :]])
        ).sum(axis=1) + (
            wd[None, :] * self._terms(D[sc[None, :], cand[:, None]])
        ).sum(axis=1)
        return new - old_sum

    def union_eids(self, i: int, j: int) -> np.ndarray:
        return np.union1d(self._all_eids_np[i], self._all_eids_np[j])

    def bump_weight(self, eid: int, add: int = 1) -> None:
        self._w[eid] += add

    def stretched_edges(self, cells) -> list[int]:
        d = self._D[cells[self._esrc], cells[self._edst]]
        return [int(eid) for eid in np.nonzero(d > 1)[0]]


def make_evaluator(
    dfg: DFG, cgra: CGRA, *, vectorized: bool = True
) -> DeltaCostEvaluator:
    """Build the requested backend (both are semantically identical)."""
    cls = VectorDeltaCost if vectorized else ScalarDeltaCost
    return cls(dfg, cgra)
