"""The adjacency-placement model behind the exact mappers.

Exact formulations cannot afford the router's full step-by-step search
inside the solver, so — like most published ILP/SAT/CP formulations —
they solve a *restricted but sound* placement model and let graph
extension recover generality:

* every operation takes one ``(cell, cycle)`` slot from a finite
  domain;
* an edge ``u -> v`` is satisfied when either

  - the consumer fires the cycle after the value is emitted and sits
    on the producer's cell or an out-neighbour (a direct wire read), or
  - producer and consumer share a cell and the gap is bridged by
    register-file holds (any length);

* multi-hop communication is recovered by inserting explicit ``ROUTE``
  operations into the DFG (:func:`repro.mappers.regraph
  .split_dist0_edges`), which then occupy cells like any op — the
  solver decides where; exact mappers escalate insertion rounds before
  escalating II.

Solutions translate mechanically into validated mappings
(:func:`build_mapping` materialises the hold chains).
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.arch.tec import HOLD, Step
from repro.core.mapping import Mapping
from repro.ir.dfg import DFG, Edge
from repro.mappers.schedule import asap

__all__ = [
    "Slot",
    "build_mapping",
    "compatible",
    "real_edges",
    "slot_domains",
]

Slot = tuple[int, int]  # (cell, cycle)


def real_edges(dfg: DFG) -> list[Edge]:
    return [
        e
        for e in dfg.edges()
        if not dfg.node(e.src).op.is_pseudo
        and not dfg.node(e.dst).op.is_pseudo
    ]


def slot_domains(
    dfg: DFG, cgra: CGRA, ii: int, *, window: int | None = None
) -> dict[int, list[Slot]]:
    """Per-op candidate slots: supporting cells x an ASAP-anchored window."""
    win = window if window is not None else ii + 2
    t0 = asap(dfg, ii)
    domains: dict[int, list[Slot]] = {}
    for node in dfg.nodes():
        if node.op.is_pseudo:
            continue
        cells = [c.cid for c in cgra.cells if c.supports(node.op)]
        lo = t0[node.nid]
        domains[node.nid] = [
            (c, t) for t in range(lo, lo + win + 1) for c in cells
        ]
    return domains


def compatible(
    cgra: CGRA, ii: int, e: Edge, lat: int, su: Slot, sv: Slot
) -> bool:
    """May edge ``e`` connect producer slot ``su`` to consumer ``sv``?"""
    cu, tu = su
    cv, tv = sv
    delta = tv + e.dist * ii - tu - lat
    if delta < 0:
        return False
    if cu == cv:
        return True  # register-file holds bridge the gap
    return delta == 0 and cgra.has_link(cu, cv)


def build_mapping(
    dfg: DFG,
    cgra: CGRA,
    ii: int,
    assign: dict[int, Slot],
    mapper: str,
) -> Mapping:
    """Materialise an adjacency-model solution as a Mapping.

    Same-cell gaps become HOLD chains; direct reads need no steps.
    The result still goes through ``validate()`` (RF capacity is not
    part of the solver model, so the caller must check).
    """
    binding = {nid: s[0] for nid, s in assign.items()}
    schedule = {nid: s[1] for nid, s in assign.items()}
    routes: dict[Edge, list[Step]] = {}
    for e in real_edges(dfg):
        cu, tu = assign[e.src]
        cv, tv = assign[e.dst]
        lat = dfg.node(e.src).op.latency
        t_consume = tv + e.dist * ii
        gap = t_consume - tu - lat
        if gap > 0:
            routes[e] = [
                Step(cu, tu + lat + k, HOLD) for k in range(gap)
            ]
    return Mapping(
        dfg,
        cgra,
        kind="modulo",
        binding=binding,
        schedule=schedule,
        routes=routes,
        ii=ii,
        mapper=mapper,
    )
