"""Content-addressed mapping cache.

Real mapping traffic is massively repetitive: a DSE sweep maps the
same four kernels on 24 design points, the portfolio races twenty
mappers on one problem, and ``run_matrix`` replays identical
(kernel, arch) pairs run after run.  This subsystem makes the *second*
identical call free:

* **Canonical keys** (:mod:`repro.cache.fingerprint`) — an
  isomorphism-invariant DFG digest plus an architecture digest
  covering everything that affects feasibility, combined with the
  mapper's identity (name, seed, requested II, configuration token).
* **Tiered store** (:mod:`repro.cache.store`) — an in-process LRU
  over :mod:`repro.core.serialize` documents, optionally backed by an
  on-disk directory (atomic writes, corruption-tolerant reads, byte
  cap) that forked ``pmap`` workers and separate processes share.
* **Validate-on-load** — every loaded document is fingerprint-checked
  and the decoded :class:`~repro.core.mapping.Mapping` re-validated
  against the live problem before it is returned.  A stale, corrupt,
  or mistranslated entry is a silent miss (counted in
  ``validation_failures``), never a wrong answer.

The cache is **off by default**.  Turn it on per region::

    with mapping_cache() as cache:            # in-process LRU only
        mapper.map(dfg, cgra)
        mapper.map(dfg, cgra)                 # hit
    print(cache.stats.as_dict())

    with mapping_cache("/tmp/repro-cache"):   # + shared disk tier
        explore(jobs=4)

or process-wide via the environment: ``REPRO_CACHE=1`` enables the
memory tier, ``REPRO_CACHE=/path`` (or ``REPRO_CACHE=1`` plus
``REPRO_CACHE_DIR=/path``) adds the disk tier.  ``cache_disabled()``
forces it off for a region regardless of the environment.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.arch.cgra import CGRA
from repro.cache.fingerprint import (
    DIGEST_LEN,
    arch_fingerprint,
    canonical_ids,
    dfg_fingerprint,
    problem_fingerprint,
    refine_colors,
)
from repro.cache.store import (
    DEFAULT_DISK_BYTES,
    DEFAULT_MEMORY_ENTRIES,
    DiskStore,
    MemoryStore,
    TieredStore,
)
from repro.core.mapping import Mapping
from repro.core.serialize import mapping_from_doc, mapping_to_doc
from repro.ir.dfg import DFG
from repro.obs.tracer import (
    CACHE_HITS,
    CACHE_MISSES,
    CACHE_VALIDATION_FAILURES,
    get_tracer,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_ENV",
    "CacheStats",
    "DiskStore",
    "MappingCache",
    "MemoryStore",
    "TieredStore",
    "arch_fingerprint",
    "cache_disabled",
    "cache_scope",
    "canonical_ids",
    "dfg_fingerprint",
    "get_cache",
    "mapping_cache",
    "problem_fingerprint",
    "reset_cache",
    "set_cache",
]

#: Master switch: ``1``/``on``/``true`` enables the memory tier, any
#: other non-empty value is taken as the disk directory path.
CACHE_ENV = "REPRO_CACHE"
#: Disk directory used when :data:`CACHE_ENV` enables the cache.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_OFF_VALUES = frozenset({"", "0", "off", "false", "no"})
_ON_VALUES = frozenset({"1", "on", "true", "yes"})


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`MappingCache`."""

    hits: int = 0
    misses: int = 0
    validation_failures: int = 0
    stores: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "validation_failures": self.validation_failures,
            "stores": self.stores,
        }

    def snapshot(self) -> tuple[int, int, int, int]:
        return (self.hits, self.misses, self.validation_failures,
                self.stores)

    def delta_since(
        self, before: tuple[int, int, int, int]
    ) -> dict[str, int]:
        now = self.snapshot()
        keys = ("hits", "misses", "validation_failures", "stores")
        return {k: now[i] - before[i] for i, k in enumerate(keys)}

    def merge(self, delta: dict[str, int] | None) -> None:
        """Fold a worker's stats delta into this process's totals."""
        if not delta:
            return
        self.hits += delta.get("hits", 0)
        self.misses += delta.get("misses", 0)
        self.validation_failures += delta.get("validation_failures", 0)
        self.stores += delta.get("stores", 0)

    def describe(self) -> str:
        return (
            f"{self.hits} hit(s), {self.misses} miss(es),"
            f" {self.validation_failures} validation failure(s),"
            f" {self.stores} store(s)"
        )


class MappingCache:
    """The content-addressed mapping cache: keys, store, validation."""

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        *,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
        disk_bytes: int = DEFAULT_DISK_BYTES,
    ) -> None:
        self.store = TieredStore(
            MemoryStore(memory_entries),
            DiskStore(directory, disk_bytes) if directory else None,
        )
        self.stats = CacheStats()
        # WL colors of the DFG most recently fingerprinted by key():
        # the key -> get/put sequence of one Mapper.map call refines
        # the same graph up to three times otherwise.  The memo holds
        # the graph itself (not its id(), which the allocator reuses);
        # a stale reuse after an in-place mutation is caught by the
        # validate-on-load invariant like any other defect.
        self._wl: tuple[DFG, dict[int, str]] | None = None

    # ------------------------------------------------------------------
    def key(
        self,
        dfg: DFG,
        cgra: CGRA,
        *,
        mapper: str,
        seed: int = 0,
        ii: int | None = None,
        token: str = "",
    ) -> str:
        """The canonical cache key of one mapping call.

        Covers the problem (canonical DFG and architecture digests)
        and the solver identity (mapper name, seed, requested II, and
        the mapper's configuration ``token``) — everything that can
        change the produced mapping.
        """
        import hashlib

        base = (
            f"{dfg_fingerprint(dfg, self._colors(dfg))}"
            f"{arch_fingerprint(cgra)}"
            f"-{mapper}-s{seed}-ii{'auto' if ii is None else ii}"
        )
        if token:
            digest = hashlib.sha256(token.encode()).hexdigest()[:8]
            base += f"-t{digest}"
        return base

    def _colors(self, dfg: DFG) -> dict[int, str]:
        memo = self._wl
        if memo is not None and memo[0] is dfg:
            return memo[1]
        colors = refine_colors(dfg)
        self._wl = (dfg, colors)
        return colors

    # ------------------------------------------------------------------
    def get(self, key: str, dfg: DFG, cgra: CGRA) -> Mapping | None:
        """Look up, decode, and re-validate a cached mapping.

        Returns None on a miss *or* on any defect in the stored entry
        (wrong fingerprint, stale format, truncated document,
        failed validation) — defects additionally bump the
        ``validation_failures`` stat and the tracer counter, and the
        poisoned entry is dropped from the store.
        """
        tracer = get_tracer()
        doc = self.store.get(key)
        if doc is None:
            self.stats.misses += 1
            tracer.count(CACHE_MISSES)
            return None
        try:
            # The key's leading segment IS the live problem's
            # fingerprint (key() just computed it), so the document
            # check needs no recomputation.
            if doc.get("fingerprint") != key.split("-", 1)[0]:
                raise ValueError("fingerprint mismatch")
            canon = canonical_ids(dfg, self._colors(dfg))
            canon_to_live = {c: nid for nid, c in canon.items()}
            mapping = mapping_from_doc(
                doc, dfg, cgra, node_map=canon_to_live, verify=False
            )
        except Exception:
            # Validate-on-load invariant: a bad entry is a miss, never
            # a crash and never a wrong answer.
            self.stats.misses += 1
            self.stats.validation_failures += 1
            tracer.count(CACHE_MISSES)
            tracer.count(CACHE_VALIDATION_FAILURES)
            self.store.invalidate(key)
            return None
        self.stats.hits += 1
        tracer.count(CACHE_HITS)
        return mapping

    def put(self, key: str, mapping: Mapping) -> None:
        """Store a mapping under ``key`` in canonical node-id space.

        Declined (silently) when the mapping's own graph does not
        match the key's DFG digest: exact mappers may hand back a
        mapping over a ROUTE-split *rewrite* of the caller's graph,
        and such a result cannot be replayed onto the graph the key
        describes.
        """
        colors = self._colors(mapping.dfg)
        if dfg_fingerprint(mapping.dfg, colors) != key[:DIGEST_LEN]:
            return
        doc = mapping_to_doc(
            mapping, node_map=canonical_ids(mapping.dfg, colors)
        )
        self.store.put(key, doc)
        self.stats.stores += 1

    def clear(self) -> None:
        self.store.clear()


# ---------------------------------------------------------------------------
# The process-wide active cache.  ``_UNSET`` means "not yet resolved
# from the environment"; an explicit ``set_cache`` (or the context
# managers) overrides the environment either way.
_UNSET = object()
_ACTIVE: MappingCache | None | object = _UNSET


def _cache_from_env() -> MappingCache | None:
    value = os.environ.get(CACHE_ENV, "").strip()
    if value.lower() in _OFF_VALUES:
        return None
    if value.lower() in _ON_VALUES:
        directory = os.environ.get(CACHE_DIR_ENV) or None
    else:
        directory = value  # a path doubles as the on-switch
    return MappingCache(directory)


def get_cache() -> MappingCache | None:
    """The active cache, or None when caching is off (the default)."""
    global _ACTIVE
    if _ACTIVE is _UNSET:
        _ACTIVE = _cache_from_env()
    return _ACTIVE  # type: ignore[return-value]


def set_cache(cache: MappingCache | None) -> MappingCache | None:
    """Install ``cache`` (None = force off); returns the previous one."""
    global _ACTIVE
    previous = get_cache()
    _ACTIVE = cache
    return previous


def reset_cache() -> None:
    """Forget any installed cache; the next lookup re-reads the env."""
    global _ACTIVE
    _ACTIVE = _UNSET


@contextmanager
def mapping_cache(
    directory: str | os.PathLike | None = None,
    *,
    memory_entries: int = DEFAULT_MEMORY_ENTRIES,
    disk_bytes: int = DEFAULT_DISK_BYTES,
    cache: MappingCache | None = None,
) -> Iterator[MappingCache]:
    """Enable caching for a region; restores the previous state on exit.

    ::

        with mapping_cache() as cache:
            mapper.map(dfg, cgra)     # miss + store
            mapper.map(dfg, cgra)     # hit
    """
    active = cache if cache is not None else MappingCache(
        directory, memory_entries=memory_entries, disk_bytes=disk_bytes
    )
    previous = set_cache(active)
    try:
        yield active
    finally:
        set_cache(previous)


@contextmanager
def cache_disabled() -> Iterator[None]:
    """Force caching off for a region, overriding the environment."""
    previous = set_cache(None)
    try:
        yield
    finally:
        set_cache(previous)


@contextmanager
def cache_scope(
    cache: bool | str | os.PathLike | MappingCache | None = None,
) -> Iterator[MappingCache | None]:
    """Resolve a user-facing tri-state cache option into a region.

    The harness entry points (``run_matrix``, ``explore``, the CLI)
    all take the same ``cache`` argument:

    * ``None`` — leave the ambient state alone (environment, or an
      enclosing :func:`mapping_cache` region);
    * ``False`` — force caching off for the region;
    * ``True`` — fresh in-process memory tier;
    * a path — memory tier plus a shared disk tier at that directory;
    * a :class:`MappingCache` — install that instance (lets callers
      carry stats across regions).
    """
    if cache is None:
        yield get_cache()
    elif cache is False:
        with cache_disabled():
            yield None
    elif cache is True:
        with mapping_cache() as active:
            yield active
    elif isinstance(cache, MappingCache):
        with mapping_cache(cache=cache) as active:
            yield active
    else:
        with mapping_cache(cache) as active:
            yield active
