"""Tiered memo store: in-process LRU over an optional disk directory.

Entries are the plain-JSON documents of :mod:`repro.core.serialize`,
relabeled into canonical node-id space by the cache layer before they
get here.  Two tiers:

* :class:`MemoryStore` — a bounded LRU dict.  Hot entries cost one
  dict lookup; eviction is strictly least-recently-used.
* :class:`DiskStore` — one JSON file per key under a root directory.
  Writes go through a temp file + :func:`os.replace` so readers (and
  concurrent ``pmap`` workers sharing the directory) never observe a
  half-written entry.  Reads are corruption-tolerant: unreadable or
  non-JSON files read as ``None`` and are unlinked best-effort.
  Eviction trims oldest-modified entries once the directory exceeds
  its byte cap.

Neither tier interprets the documents: fingerprint verification and
re-validation against the live problem happen one layer up, in
:class:`repro.cache.MappingCache`.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Any

__all__ = ["DiskStore", "MemoryStore", "TieredStore"]

#: Default byte cap of a disk store directory.
DEFAULT_DISK_BYTES = 64 * 1024 * 1024

#: Default entry cap of the in-process LRU.
DEFAULT_MEMORY_ENTRIES = 256


class MemoryStore:
    """A bounded in-process LRU of cache documents."""

    def __init__(self, capacity: int = DEFAULT_MEMORY_ENTRIES) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, dict[str, Any]] = OrderedDict()

    def get(self, key: str) -> dict[str, Any] | None:
        doc = self._entries.get(key)
        if doc is not None:
            self._entries.move_to_end(key)
        return doc

    def put(self, key: str, doc: dict[str, Any]) -> None:
        self._entries[key] = doc
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate(self, key: str) -> None:
        self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> list[str]:
        return list(self._entries)


class DiskStore:
    """A directory of JSON cache entries with atomic writes.

    Safe to share between processes: writes are temp-file + rename,
    reads tolerate missing/corrupt files, and eviction races degrade
    to best-effort deletes.
    """

    def __init__(
        self, root: str | Path, max_bytes: int = DEFAULT_DISK_BYTES
    ) -> None:
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            doc = json.loads(text)
        except ValueError:
            # Torn or corrupted entry (e.g. a crashed writer on a
            # filesystem without atomic rename): drop it and miss.
            self.invalidate(key)
            return None
        if not isinstance(doc, dict):
            self.invalidate(key)
            return None
        return doc

    def put(self, key: str, doc: dict[str, Any]) -> None:
        path = self._path(key)
        try:
            fd, tmp = tempfile.mkstemp(
                prefix=".tmp-", suffix=".json", dir=str(self.root)
            )
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            # A full or read-only disk must never fail the mapping
            # call; the entry is simply not persisted.
            try:
                os.unlink(tmp)
            except (OSError, UnboundLocalError):
                pass
            return
        os.utime(path)  # freshen mtime for LRU eviction
        self._evict()

    def invalidate(self, key: str) -> None:
        try:
            self._path(key).unlink()
        except OSError:
            pass

    def _entries(self) -> list[tuple[float, int, Path]]:
        """(mtime, size, path) of every entry, oldest first."""
        out = []
        try:
            paths = list(self.root.glob("*.json"))
        except OSError:
            return []
        for p in paths:
            try:
                st = p.stat()
            except OSError:
                continue
            out.append((st.st_mtime, st.st_size, p))
        out.sort()
        return out

    def _evict(self) -> None:
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        for _, size, path in entries:
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for _, _, path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> dict[str, Any]:
        entries = self._entries()
        return {
            "directory": str(self.root),
            "entries": len(entries),
            "bytes": sum(size for _, size, _ in entries),
            "max_bytes": self.max_bytes,
        }

    def __len__(self) -> int:
        return len(self._entries())


class TieredStore:
    """Memory LRU in front of an optional disk directory.

    Disk hits are promoted into the memory tier; puts write through
    to both.
    """

    def __init__(
        self,
        memory: MemoryStore | None = None,
        disk: DiskStore | None = None,
    ) -> None:
        self.memory = memory if memory is not None else MemoryStore()
        self.disk = disk

    def get(self, key: str) -> dict[str, Any] | None:
        doc = self.memory.get(key)
        if doc is not None:
            return doc
        if self.disk is not None:
            doc = self.disk.get(key)
            if doc is not None:
                self.memory.put(key, doc)
        return doc

    def put(self, key: str, doc: dict[str, Any]) -> None:
        self.memory.put(key, doc)
        if self.disk is not None:
            self.disk.put(key, doc)

    def invalidate(self, key: str) -> None:
        self.memory.invalidate(key)
        if self.disk is not None:
            self.disk.invalidate(key)

    def clear(self) -> None:
        self.memory.clear()
        if self.disk is not None:
            self.disk.clear()
