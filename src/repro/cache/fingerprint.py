"""Canonical fingerprints for the mapping cache.

A content-addressed cache is only as good as its keys.  Two problems
that are *the same problem* must collide, and two problems that differ
in anything affecting feasibility must not.  This module computes both
halves of the key:

* :func:`dfg_fingerprint` — an isomorphism-invariant digest of the
  application graph.  Node ids are accidents of construction order
  (``a*b + c*d`` built left-to-right or right-to-left is the same
  kernel), so the digest is built from Weisfeiler–Leman-style color
  refinement over opcode/port/distance labels instead of ids.
  :func:`canonical_ids` exposes the relabeling the refinement induces,
  which is what lets a cached mapping be replayed onto an isomorphic
  DFG with different node numbering.
* :func:`arch_fingerprint` — a digest of everything about a
  :class:`~repro.arch.cgra.CGRA` that affects mapping feasibility:
  grid shape, the full link set, context-memory depth, per-cell
  register-file depth / opcode set / memory port / immediate width,
  and the routing discipline (``route_shares_fu``, bypass capacity).
  The preset *name* is deliberately excluded — renaming an array does
  not change what maps onto it.

WL refinement can leave genuinely symmetric nodes in one color class;
:func:`canonical_ids` breaks such ties by node id, which is only
guaranteed consistent across relabelings when the tied nodes are
automorphic (in which case any tie-break yields an equally valid
mapping).  The cache's validate-on-load invariant backstops the rare
non-automorphic tie: a mistranslated mapping fails validation and
reads as a miss, never as a wrong answer.
"""

from __future__ import annotations

import hashlib

from repro.arch.cgra import CGRA
from repro.ir.dfg import DFG

__all__ = [
    "arch_fingerprint",
    "canonical_ids",
    "dfg_fingerprint",
    "problem_fingerprint",
    "refine_colors",
]

#: Digest length (hex chars) of each fingerprint half.
DIGEST_LEN = 16


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _node_seed(node) -> str:
    """The initial (round-0) color: every label that constrains where
    the node may bind, none of the accidental ones (nid, display name)."""
    value = node.value if node.value is not None else ""
    array = node.array if node.array is not None else ""
    pred = "" if node.pred is None else ("1" if node.pred else "0")
    return f"{node.op.value}|{value}|{array}|{pred}"


def refine_colors(dfg: DFG) -> dict[int, str]:
    """Weisfeiler–Leman color refinement over the labeled DFG.

    Starts from opcode/constant/predicate seeds and repeatedly folds
    each node's sorted in- and out-neighborhood (port, distance,
    neighbor color) into its color until the partition stops
    splitting.  Colors are canonical strings — stable across
    processes (no builtin ``hash``) and across node renumbering.
    """
    colors = {nid: _node_seed(dfg.node(nid)) for nid in dfg}
    n = len(colors)
    distinct = len(set(colors.values()))
    for _ in range(n):
        sigs: dict[int, str] = {}
        for nid in dfg:
            ins = sorted(
                f"{e.port}:{e.dist}:{colors[e.src]}"
                for e in dfg.in_edges(nid)
            )
            outs = sorted(
                f"{e.port}:{e.dist}:{colors[e.dst]}"
                for e in dfg.out_edges(nid)
            )
            sigs[nid] = _sha(
                colors[nid] + "<" + ";".join(ins) + ">" + ";".join(outs)
            )
        # Relabel into a canonical palette: color names depend only on
        # the sorted signature set, never on node ids.
        palette = {
            sig: f"c{i}" for i, sig in enumerate(sorted(set(sigs.values())))
        }
        colors = {nid: palette[sigs[nid]] for nid in dfg}
        now = len(set(colors.values()))
        if now == distinct:
            break
        distinct = now
    return colors


def canonical_ids(
    dfg: DFG, colors: dict[int, str] | None = None
) -> dict[int, int]:
    """Map each node id to its canonical index (0..n-1).

    Nodes are ordered by refined color, ties broken by node id.  Two
    isomorphic DFGs get the same canonical indexing whenever the
    refinement is discriminating (the overwhelmingly common case for
    labeled DAGs); symmetric ties translate along an automorphism.
    ``colors`` lets a caller that already refined this graph skip the
    recomputation.
    """
    if colors is None:
        colors = refine_colors(dfg)
    ordered = sorted(dfg, key=lambda nid: (colors[nid], nid))
    return {nid: i for i, nid in enumerate(ordered)}


def dfg_fingerprint(
    dfg: DFG, colors: dict[int, str] | None = None
) -> str:
    """Isomorphism-invariant digest of the application graph."""
    if colors is None:
        colors = refine_colors(dfg)
    nodes = sorted(colors.values())
    edges = sorted(
        f"{colors[e.src]}>{colors[e.dst]}@{e.port}+{e.dist}"
        for e in dfg.edges()
    )
    body = f"n={len(nodes)};" + ",".join(nodes) + "|" + ",".join(edges)
    return _sha(body)[:DIGEST_LEN]


def arch_fingerprint(cgra: CGRA) -> str:
    """Digest of every architecture parameter that affects feasibility.

    Memoized on the instance (like ``CGRA.distance_table``'s ``_dist``
    — arrays are immutable after construction), because the cache's
    hot path fingerprints the same array once per mapping call.
    """
    cached = getattr(cgra, "_arch_fp", None)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    h.update(
        (
            f"{cgra.width}x{cgra.height}"
            f"|share={int(cgra.route_shares_fu)}"
            f"|bypass={cgra.bypass_capacity}"
            f"|ctx={cgra.n_contexts}"
            f"|hwloop={int(cgra.hw_loop)}"
            f"|banks={cgra.memory_banks}"
        ).encode()
    )
    for cell in cgra.cells:
        ops = ",".join(sorted(op.value for op in cell.ops))
        h.update(
            (
                f"|{cell.cid}:{cell.x},{cell.y}:{cell.kind.value}"
                f":rf{cell.rf_size}:mem{int(cell.has_memory_port)}"
                f":cw{cell.const_width}:[{ops}]"
            ).encode()
        )
    h.update(str(sorted(cgra.links)).encode())
    fp = h.hexdigest()[:DIGEST_LEN]
    cgra._arch_fp = fp
    return fp


def problem_fingerprint(dfg: DFG, cgra: CGRA) -> str:
    """The combined (application, architecture) digest."""
    return f"{dfg_fingerprint(dfg)}{arch_fingerprint(cgra)}"
