"""Top-level convenience API.

Thin wrappers that tie the front end, the mapper registry, and the
architecture presets together so the common workflows are one-liners:

* :func:`map_dfg` — map a DFG onto a CGRA with a named mapper;
* :func:`compile_source` — full flow: source text -> CDFG -> passes ->
  predicated DFG -> mapping;
* :func:`available_mappers` — the registry contents (Table I, live).
"""

from __future__ import annotations

from typing import Any

__all__ = ["available_mappers", "compile_source", "map_dfg"]


def map_dfg(dfg, cgra, mapper: str = "dresc", ii: int | None = None, **opts):
    """Map ``dfg`` onto ``cgra`` using the registered mapper ``mapper``.

    Args:
        dfg: a :class:`repro.ir.DFG`.
        cgra: a :class:`repro.arch.CGRA`.
        mapper: registry name (see :func:`available_mappers`).
        ii: initiation interval to start the II search from (temporal
            mappers only); None lets the mapper pick MII.
        **opts: forwarded to the mapper constructor.

    Returns:
        a validated :class:`repro.core.Mapping`.
    """
    from repro.core.registry import create

    m = create(mapper, **opts)
    return m.map(dfg, cgra, ii=ii)


def compile_source(source: str, cgra, mapper: str = "dresc", **opts):
    """Compile C-like ``source`` down to a mapping on ``cgra``.

    Runs the front end (lex/parse/lower), the standard middle-end pass
    pipeline, if-conversion of any control flow, and finally the
    selected mapper — the full Fig. 3 flow of the survey.
    """
    from repro.frontend import compile_to_cdfg
    from repro.passes import standard_pipeline
    from repro.controlflow import flatten_cdfg

    cdfg = compile_to_cdfg(source)
    dfg = flatten_cdfg(cdfg)
    dfg = standard_pipeline(dfg)
    return map_dfg(dfg, cgra, mapper=mapper, **opts)


def available_mappers() -> dict[str, dict[str, Any]]:
    """Names and taxonomy metadata of every registered mapper."""
    from repro.core.registry import catalog

    return catalog()
