"""Structured bibliography of the surveyed mapping literature.

One :class:`Work` per mapping-focused citation of the paper, with the
metadata the survey's artifacts are built from:

* ``table1`` — the cells of Table I the citation appears in, as
  ``(row, column)`` pairs with rows in {``spatial``, ``temporal``,
  ``binding``, ``scheduling``} and columns in {``heuristic``,
  ``population``, ``local_search``, ``ilp_bb``, ``csp``};
* ``features`` — the Fig. 4 era tags (``modulo_scheduling``,
  ``full_predication``, ``partial_predication``, ``dual_issue``,
  ``direct_mapping``, ``loop_unrolling``, ``memory_aware``,
  ``polyhedral``, ``hardware_loops``).

Citation keys are the survey's own reference numbers, so every entry
can be checked against the paper's Table I and reference list.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Work", "BIBLIOGRAPHY", "by_year", "works_with"]

ROWS = ("spatial", "temporal", "binding", "scheduling")
COLUMNS = ("heuristic", "population", "local_search", "ilp_bb", "csp")


@dataclass(frozen=True)
class Work:
    key: int                 #: citation number in the survey
    name: str                #: short handle (system or first author)
    year: int
    technique: str           #: one-line description of the method
    table1: tuple[tuple[str, str], ...] = ()
    features: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        for row, col in self.table1:
            if row not in ROWS or col not in COLUMNS:
                raise ValueError(
                    f"[{self.key}] bad Table I cell ({row}, {col})"
                )


def _w(key, name, year, technique, table1=(), features=()):
    return Work(
        key, name, year, technique,
        tuple(table1), frozenset(features),
    )


#: The mapping-focused works the survey cites, with its classification.
BIBLIOGRAPHY: tuple[Work, ...] = (
    _w(12, "Bondalapati-loops", 1998, "loop mapping heuristic",
       [("temporal", "heuristic")],
       ["modulo_scheduling", "loop_unrolling"]),
    _w(13, "Bondalapati-DCS", 2001, "data context switching for nested loops",
       features=["loop_unrolling"]),
    _w(14, "DRAA", 2003, "template-based binding for generic ALU arrays",
       [("binding", "heuristic")]),
    _w(15, "Guo-ILP-sync", 2021, "ILP with data-arrival synchronisers",
       [("binding", "ilp_bb"), ("scheduling", "ilp_bb")]),
    _w(16, "UltraFast", 2021, "ultra-fast greedy scheduling for run-time use",
       [("temporal", "heuristic")]),
    _w(17, "Miyasaka-SAT", 2021, "SAT encoding of DFG-on-CGRA",
       [("temporal", "csp")]),
    _w(19, "GenMap", 2020, "genetic algorithm spatial mapping",
       [("spatial", "population")]),
    _w(20, "DeSutter-regalloc", 2008,
       "P&R-based register allocation on DRESC",
       features=["modulo_scheduling"]),
    _w(22, "DRESC", 2002, "modulo scheduling + simulated annealing",
       [("temporal", "local_search")], ["modulo_scheduling"]),
    _w(23, "Yoon-graph-drawing", 2009, "graph-drawing spatial mapper + ILP",
       [("spatial", "heuristic"), ("spatial", "ilp_bb")]),
    _w(24, "Das-scalable", 2016,
       "stochastically pruned partial solutions",
       [("binding", "heuristic"), ("scheduling", "heuristic")]),
    _w(25, "URECA", 2018, "unified register file allocation"),
    _w(26, "HiMap", 2021, "hierarchical mapping of repetitive loop patterns",
       [("temporal", "heuristic")], ["modulo_scheduling"]),
    _w(27, "graph-minor", 2014, "DFG as graph minor of the space-time graph",
       [("temporal", "heuristic")]),
    _w(28, "EPIMap", 2012, "epimorphic graph extension",
       [("binding", "heuristic"), ("scheduling", "heuristic")],
       ["modulo_scheduling"]),
    _w(29, "DeSutter-rotating", 2008,
       "rotating register files via placement and routing",
       features=["modulo_scheduling"]),
    _w(30, "Hatanaka-SA", 2007, "SA modulo scheduling for an array template",
       [("spatial", "heuristic"), ("binding", "local_search")],
       ["modulo_scheduling"]),
    _w(31, "ChordMap", 2021, "streaming application mapping",
       [("spatial", "heuristic")]),
    _w(32, "DSAGEN", 2020, "spatial accelerator synthesis, SA mapping",
       [("spatial", "local_search")]),
    _w(33, "SNAFU", 2021, "energy-minimal CGRA generation, SA mapping",
       [("spatial", "local_search")]),
    _w(34, "Chin-ILP", 2018, "architecture-agnostic ILP mapping",
       [("spatial", "ilp_bb")]),
    _w(35, "Nowatzki-constraint", 2013,
       "general constraint-centric spatial scheduling",
       [("spatial", "ilp_bb")]),
    _w(36, "Zhao-robust", 2020, "robust modulo scheduling",
       [("temporal", "heuristic"), ("scheduling", "heuristic")],
       ["modulo_scheduling"]),
    _w(37, "EMS", 2008, "edge-centric modulo scheduling",
       [("temporal", "heuristic")], ["modulo_scheduling"]),
    _w(38, "RAMP", 2018, "resource-aware remapping via max clique",
       [("temporal", "heuristic")], ["modulo_scheduling"]),
    _w(39, "Gu-stress", 2018, "stress-aware multi-map reconfiguration",
       [("temporal", "heuristic")]),
    _w(40, "Traversal", 2021, "fast adaptive graph-based P&R",
       [("temporal", "heuristic")]),
    _w(41, "Brenner-ILP", 2006,
       "optimal simultaneous scheduling, binding and routing",
       [("temporal", "ilp_bb")]),
    _w(42, "DNestMap", 2018, "branch-and-bound for deeply nested loops",
       [("temporal", "ilp_bb")]),
    _w(43, "Raffin-CP", 2010, "constraint programming mapping",
       [("temporal", "csp")]),
    _w(44, "Donovick-SMT", 2019, "SMT with restricted routing networks",
       [("temporal", "csp")]),
    _w(45, "Yin-affine", 2015, "joint affine transform + loop pipelining",
       [("binding", "heuristic")], ["polyhedral", "modulo_scheduling"]),
    _w(46, "REGIMap", 2013, "register-aware mapping via clique",
       [("binding", "heuristic"), ("scheduling", "heuristic")],
       ["modulo_scheduling"]),
    _w(47, "Peyret-backward", 2014,
       "backward simultaneous scheduling/binding",
       [("binding", "heuristic")]),
    _w(48, "Lee-QEA", 2011, "quantum-inspired evolutionary mapping",
       [("binding", "population"), ("binding", "ilp_bb"),
        ("scheduling", "heuristic")]),
    _w(49, "SPR", 2009, "architecture-adaptive SA + PathFinder",
       [("binding", "local_search")]),
    _w(50, "rotated-parallel", 2014, "rotated parallel mapping",
       [("binding", "local_search"), ("scheduling", "heuristic")],
       ["memory_aware"]),
    _w(51, "Bansal-PEconfig", 2003, "PE configuration analysis",
       [("scheduling", "heuristic")]),
    _w(52, "CRIMSON", 2020, "randomised iterative modulo scheduling",
       [("scheduling", "heuristic")], ["modulo_scheduling"]),
    _w(53, "Mu-routability", 2021, "routability-enhanced scheduling",
       [("scheduling", "ilp_bb")]),
    _w(54, "Das-IPA", 2019, "energy-efficient array + compilation flow",
       features=["direct_mapping"]),
    _w(55, "dynamic-II", 2021, "dual-issue pipeline for irregular branches",
       features=["dual_issue"]),
    _w(56, "Anido-guarded", 2002, "guarded instructions / pseudo branches",
       features=["full_predication"]),
    _w(57, "Chang-Choi", 2008, "control-intensive kernel mapping",
       features=["partial_predication"]),
    _w(58, "branch-aware", 2014, "dual-issue single execution",
       features=["dual_issue"]),
    _w(59, "4D-CGRA", 2019, "branch dimension in spatio-temporal mapping",
       features=["dual_issue", "modulo_scheduling"]),
    _w(60, "Das-CDFG", 2017, "direct CDFG mapping",
       features=["direct_mapping"]),
    _w(61, "Mei-modulo", 2003, "loop-level parallelism via modulo scheduling",
       features=["modulo_scheduling"]),
    _w(62, "LASER", 2018, "HW/SW accelerated complicated loops",
       features=["hardware_loops"]),
    _w(63, "Sunny-hwloop", 2021, "hardware-based loop optimisation",
       features=["hardware_loops"]),
    _w(64, "Vadivel-loop", 2017, "loop overhead reduction",
       features=["hardware_loops"]),
    _w(65, "Li-partitioning", 2021, "memory partitioning + subtask generation",
       features=["memory_aware"]),
    _w(66, "Kim-memopt", 2011, "memory access optimisation in compilation",
       features=["memory_aware"]),
    _w(67, "Zhao-placement", 2018, "multi-bank data placement",
       features=["memory_aware"]),
    _w(68, "Yin-conflict-free", 2017, "conflict-free multi-bank loop mapping",
       features=["memory_aware"]),
    _w(74, "RL-mapping", 2019, "deep reinforcement learning mapping",
       features=["modulo_scheduling"]),
)


def by_year() -> dict[int, list[Work]]:
    """Works grouped by publication year (ascending)."""
    out: dict[int, list[Work]] = {}
    for w in BIBLIOGRAPHY:
        out.setdefault(w.year, []).append(w)
    return dict(sorted(out.items()))


def works_with(feature: str) -> list[Work]:
    """Works tagged with a Fig. 4 era feature."""
    return [w for w in BIBLIOGRAPHY if feature in w.features]
