"""Fig. 4: the publication timeline with era annotations.

Regenerated from the structured bibliography: publications per year
over 2000–2021, plus the onset year of each technique era the figure
annotates (first cited work carrying that feature).  The paper itself
warns the histogram "is not comprehensive"; the shape — intensified
effort in the second decade, a clear 2021 spike — is the claim the
benchmark checks.
"""

from __future__ import annotations

from repro.survey.bibliography import BIBLIOGRAPHY, works_with

__all__ = [
    "ERA_MARKERS",
    "era_onsets",
    "publications_per_year",
    "render_timeline",
]

#: Fig. 4's annotation labels, keyed by bibliography feature tag.
ERA_MARKERS = {
    "modulo_scheduling": "Modulo scheduling",
    "loop_unrolling": "Loop unrolling",
    "full_predication": "Full predication",
    "partial_predication": "Partial predication",
    "dual_issue": "Dual issue / single execution",
    "direct_mapping": "Direct mapping",
    "memory_aware": "Memory aware",
    "polyhedral": "Polyhedral model",
    "hardware_loops": "Hardware loops",
}

SPAN = (2000, 2021)


def publications_per_year(
    span: tuple[int, int] = SPAN
) -> dict[int, int]:
    """Cited mapping publications per year over ``span`` (inclusive)."""
    lo, hi = span
    counts = {y: 0 for y in range(lo, hi + 1)}
    for w in BIBLIOGRAPHY:
        if lo <= w.year <= hi:
            counts[w.year] += 1
    return counts


def era_onsets() -> dict[str, int]:
    """First cited year of each annotated technique era."""
    out = {}
    for feature, label in ERA_MARKERS.items():
        works = works_with(feature)
        if works:
            out[label] = min(w.year for w in works)
    return out


def render_timeline(span: tuple[int, int] = SPAN) -> str:
    """ASCII histogram of Fig. 4 with era onset markers."""
    counts = publications_per_year(span)
    onsets = era_onsets()
    by_year_labels: dict[int, list[str]] = {}
    for label, year in sorted(onsets.items(), key=lambda kv: kv[1]):
        # Eras that predate the span (e.g. modulo scheduling, cited
        # from 1998) are marked at the span's first year, like the
        # figure's leftmost annotations.
        by_year_labels.setdefault(max(year, span[0]), []).append(label)
    lines = ["Publications per year (mapping-focused citations)"]
    for year, n in counts.items():
        marks = "; ".join(by_year_labels.get(year, []))
        suffix = f"   <- {marks}" if marks else ""
        lines.append(f"  {year}  {'#' * n}{' ' * (14 - n)}{n}{suffix}")
    return "\n".join(lines)
