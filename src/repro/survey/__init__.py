"""The survey's own dataset.

The paper's primary artifacts are a classification (Table I) and a
timeline (Fig. 4) over the literature it cites.  This package holds
that citation list as structured data
(:mod:`repro.survey.bibliography`), regenerates the classification
(:mod:`repro.survey.taxonomy` — both the literature table and the
*executable* table drawn from the mapper registry), and regenerates
the publications-per-year timeline with its era annotations
(:mod:`repro.survey.timeline`).
"""

from repro.survey.bibliography import BIBLIOGRAPHY, Work, by_year, works_with
from repro.survey.taxonomy import (
    executable_table1,
    literature_table1,
    render_table1,
)
from repro.survey.timeline import (
    ERA_MARKERS,
    publications_per_year,
    render_timeline,
)

__all__ = [
    "BIBLIOGRAPHY",
    "ERA_MARKERS",
    "Work",
    "by_year",
    "executable_table1",
    "literature_table1",
    "publications_per_year",
    "render_table1",
    "render_timeline",
    "works_with",
]
