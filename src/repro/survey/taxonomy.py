"""Table I, regenerated two ways.

* :func:`literature_table1` — from the structured bibliography: which
  citations sit in which (row, column) cell, matching the survey's
  printed table;
* :func:`executable_table1` — from the live mapper registry: which
  *implementations in this package* sit in each cell.  The paper's
  classification and the code classify through the same axes, so the
  tables can be compared cell by cell (the Table I benchmark does).
"""

from __future__ import annotations

from repro.survey.bibliography import BIBLIOGRAPHY, COLUMNS, ROWS

__all__ = [
    "COLUMN_TITLES",
    "ROW_TITLES",
    "executable_table1",
    "literature_table1",
    "render_table1",
]

ROW_TITLES = {
    "spatial": "Spatial mapping",
    "temporal": "Temporal mapping",
    "binding": "Binding",
    "scheduling": "Scheduling",
}

COLUMN_TITLES = {
    "heuristic": "Heuristics",
    "population": "Meta (population)",
    "local_search": "Meta (local search)",
    "ilp_bb": "ILP / B&B",
    "csp": "CSP (CP/SAT/SMT)",
}

Table = dict[str, dict[str, list[str]]]


def _empty() -> Table:
    return {row: {col: [] for col in COLUMNS} for row in ROWS}


def literature_table1() -> Table:
    """The survey's Table I cells, as citation labels."""
    table = _empty()
    for work in BIBLIOGRAPHY:
        for row, col in work.table1:
            table[row][col].append(f"[{work.key}]")
    for row in table.values():
        for cell in row.values():
            cell.sort(key=lambda s: int(s.strip("[]")))
    return table


def _registry_cell(meta: dict) -> tuple[str, str]:
    """(row, column) of one registered mapper."""
    solves = meta["solves"]
    kinds = meta["kinds"]
    if "spatial" in kinds:
        row = "spatial"
    elif solves == "binding":
        row = "binding"
    elif solves == "scheduling":
        row = "scheduling"
    else:
        row = "temporal"
    family = meta["family"]
    sub = meta["subfamily"]
    if family == "heuristic":
        col = "heuristic"
    elif family == "metaheuristic":
        col = "population" if sub in ("GA", "QEA") else "local_search"
    else:  # exact
        col = "csp" if sub in ("SAT", "CP", "SMT") else "ilp_bb"
    return row, col


def executable_table1() -> Table:
    """Table I over this package's registered mappers."""
    from repro.core.registry import catalog

    table = _empty()
    for name, meta in catalog().items():
        row, col = _registry_cell(meta)
        table[row][col].append(name)
    for row in table.values():
        for cell in row.values():
            cell.sort()
    return table


def render_table1(table: Table, *, title: str = "Table I") -> str:
    """ASCII rendering with the survey's row/column headings."""
    col_keys = list(COLUMNS)
    headers = ["" ] + [COLUMN_TITLES[c] for c in col_keys]
    rows = []
    for row_key in ROWS:
        cells = [ROW_TITLES[row_key]]
        for c in col_keys:
            cells.append(", ".join(table[row_key][c]) or "-")
        rows.append(cells)
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows))
        for i in range(len(headers))
    ]

    def fmt(cells):
        return " | ".join(
            c.ljust(w) for c, w in zip(cells, widths)
        ).rstrip()

    sep = "-+-".join("-" * w for w in widths)
    lines = [title, fmt(headers), sep]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)
