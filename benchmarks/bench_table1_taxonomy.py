"""Table I — the survey's classification of mapping techniques.

Regenerates (a) the literature table from the structured bibliography,
(b) the executable table from the mapper registry, and (c) the
quantitative companion the paper cannot print: every registered mapper
actually *running* on a kernel suite, with success rate, II, and
mapping time per technique family — the "high quality solution with
fast compilation time" axes of §II-C.
"""

import pytest

from repro.arch import presets
from repro.bench import ascii_table, run_matrix
from repro.core.registry import catalog
from repro.survey.taxonomy import (
    executable_table1,
    literature_table1,
    render_table1,
)

# Heuristic and meta-heuristic mappers run the full suite on the
# reference 4x4 array; the exact mappers run smaller kernels on a 3x3
# (their published counterparts lean on commercial solvers — see the
# substitution table in DESIGN.md — so the instances are scaled to what
# the from-scratch solvers prove in seconds).
HEURISTIC_MAPPERS = [
    "list_sched", "ultrafast", "edge_centric", "crimson", "ramp",
    "epimap", "regimap", "himap", "graph_minor", "dresc", "spr", "rl",
]
EXACT_MAPPERS = ["bnb", "csp", "sat", "smt", "ilp"]
SPATIAL_MAPPERS = [
    "graph_drawing", "sa_spatial", "genmap", "qea", "ilp_spatial",
]
KERNELS = ["dot_product", "if_select", "sobel_x"]
EXACT_KERNELS = ["dot_product", "if_select", "accumulate"]
SPATIAL_KERNELS = ["dot_product", "if_select", "vector_scale"]


def test_literature_table_regenerates(benchmark):
    table = benchmark(literature_table1)
    text = render_table1(table, title="Table I (literature)")
    print("\n" + text)
    # The printed table's headline cells.
    assert table["temporal"]["local_search"] == ["[22]"]
    assert table["spatial"]["population"] == ["[19]"]
    assert table["temporal"]["csp"] == ["[17]", "[43]", "[44]"]


def test_executable_table_regenerates(benchmark):
    table = benchmark(executable_table1)
    print("\n" + render_table1(table, title="Table I (executable)"))
    # Every registered mapper appears exactly once.
    names = [n for row in table.values() for c in row.values() for n in c]
    assert sorted(names) == sorted(catalog())


@pytest.mark.parametrize("family,mappers,kernels", [
    ("temporal-approx", HEURISTIC_MAPPERS, KERNELS),
    ("exact", EXACT_MAPPERS, EXACT_KERNELS),
    ("spatial", SPATIAL_MAPPERS, SPATIAL_KERNELS),
])
def test_quantitative_companion(benchmark, family, mappers, kernels):
    cgra = (
        presets.simple_cgra(3, 3)
        if family == "exact"
        else presets.simple_cgra(4, 4)
    )
    results = benchmark.pedantic(
        run_matrix, args=(mappers, kernels, cgra),
        iterations=1, rounds=1,
    )
    print("\n" + ascii_table(
        [r.row() for r in results],
        title=f"Table I companion — {family} mappers on simple4x4",
    ))
    by_mapper = {}
    for r in results:
        by_mapper.setdefault(r.mapper, []).append(r)
    # Each mapper must succeed on a majority of the suite.
    for mname, rows in by_mapper.items():
        ok = sum(1 for r in rows if r.ok)
        assert ok >= len(rows) - 1, f"{mname} failed too often"
    if family == "exact":
        # The §II-C tension: exact methods pay in compilation time.
        assert max(r.time_ms for r in by_mapper["ilp"]) > 1.0
