"""§III-C — memory-aware mapping: banks, placement, stalls.

Sweeps bank counts with naive and conflict-aware array placement on
the memory-explicit kernels, reproducing the multi-bank literature's
shape ([65]-[68]): conflicts vanish once conflict-aware placement gets
as many banks as co-scheduled arrays, while naive placement keeps
stalling.
"""

from repro.api import map_dfg
from repro.arch import presets
from repro.bench import ascii_table
from repro.controlflow.hwloops import loop_execution_cycles, loop_speedup
from repro.ir import kernels
from repro.memory.banks import BankedMemory
from repro.memory.data_placement import (
    greedy_bank_assignment,
    stall_cycles,
)


def _sweep():
    cgra = presets.simple_cgra(4, 4)
    rows = []
    for kname in ("dot_product_mem", "vector_add_mem", "stencil1d_mem"):
        dfg = kernels.kernel(kname)
        mapping = map_dfg(dfg, cgra, mapper="list_sched")
        arrays = sorted(
            {n.array for n in dfg.nodes() if n.op.is_memory}
        )
        for n_banks in (1, 2, 4):
            naive = BankedMemory(
                n_banks, {a: 0 for a in arrays}
            )  # everything in bank 0
            aware = greedy_bank_assignment(mapping, n_banks)
            rows.append(
                {
                    "kernel": kname,
                    "II": mapping.ii,
                    "banks": n_banks,
                    "stalls (naive)": stall_cycles(mapping, naive),
                    "stalls (aware)": stall_cycles(mapping, aware),
                }
            )
    return rows


def test_memory_bank_sweep(benchmark):
    rows = benchmark.pedantic(_sweep, iterations=1, rounds=1)
    print("\n" + ascii_table(rows, title="§III-C — bank sweep"))
    for row in rows:
        # Aware placement never loses to naive placement.
        assert row["stalls (aware)"] <= row["stalls (naive)"]
        if row["banks"] >= 4:
            assert row["stalls (aware)"] == 0
    # At a single bank the placements coincide (nowhere to separate).
    one_bank = [r for r in rows if r["banks"] == 1]
    assert all(
        r["stalls (aware)"] == r["stalls (naive)"] for r in one_bank
    )
    # Somewhere the aware placement strictly wins.
    assert any(
        r["stalls (aware)"] < r["stalls (naive)"] for r in rows
    )


def test_hardware_loop_overhead(benchmark):
    """§III-B2 — hardware loops amortise loop-control overhead."""
    cgra = presets.simple_cgra(4, 4)
    mapping = map_dfg(kernels.dot_product(), cgra, mapper="list_sched")

    def sweep():
        return [
            {
                "trip count": n,
                "sw cycles": loop_execution_cycles(
                    mapping, n, hw_loop=False
                ),
                "hw cycles": loop_execution_cycles(
                    mapping, n, hw_loop=True
                ),
                "speedup": round(loop_speedup(mapping, n), 2),
            }
            for n in (4, 16, 64, 256, 1024)
        ]

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    print("\n" + ascii_table(rows, title="§III-B2 — hardware loops"))
    speedups = [r["speedup"] for r in rows]
    assert speedups == sorted(speedups)  # grows with trip count
    assert speedups[-1] > 2.0            # II=1 loop: control dominated
