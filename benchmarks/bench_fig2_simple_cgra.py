"""Fig. 2 — the minimal CGRA and its configuration register.

Builds the figure's simple mesh CGRA, maps a kernel, and regenerates
the three panels: (a) the array rendering, (b) the per-cell resources
(the Cell model), (c) the configuration register contents — actual
context words derived from a real mapping, not an illustration.
"""

from repro.api import map_dfg
from repro.arch import presets
from repro.arch.cell import CellKind
from repro.ir import kernels
from repro.sim.configgen import generate_contexts, render_contexts


def _build_and_configure():
    cgra = presets.simple_cgra(4, 4)
    mapping = map_dfg(
        kernels.dot_product(), cgra, mapper="list_sched", ii=1
    )
    return cgra, mapping, generate_contexts(mapping)


def test_fig2_simple_cgra(benchmark):
    cgra, mapping, words = benchmark.pedantic(
        _build_and_configure, iterations=1, rounds=1
    )
    print("\n(a) mesh topology:\n" + cgra.render())
    rc = cgra.cell(0)
    print(
        f"\n(b) reconfigurable cell: {rc.describe()},"
        f" {len(rc.ops)} opcodes, imm width {rc.const_width} bits"
    )
    print("\n(c) configuration register:\n" + render_contexts(mapping))

    # (a) the mesh: 4x4, four-neighbour links.
    assert cgra.n_cells == 16
    assert len(cgra.links) == 48
    # (b) the RC has FU + RF + memory port, as in the figure.
    assert rc.kind is CellKind.ALU_MEM and rc.rf_size > 0
    # (c) the configuration holds opcode + mux selects per active cell.
    assert len(words) == 2  # mul and add at II=1
    opcodes = sorted(w.opcode for w in words.values())
    assert opcodes == ["add", "mul"]
    for w in words.values():
        assert w.operands, "context must carry operand mux selects"
