"""§III-B1 — the four ways to map if-then-else onto a CGRA.

Full predication, partial predication, dual-issue single execution and
direct CDFG mapping, compared on the same branch kernel.  The shapes
the literature reports must hold:

* partial predication pays extra memory ops when arms store;
* full predication pays predicate-routing edges instead;
* dual-issue overlaps the arms' slots (fewest issue slots);
* direct CDFG mapping skips the untaken arm entirely at run time but
  spends context memory on both.
"""

from repro.api import map_dfg
from repro.arch import presets
from repro.bench import ascii_table
from repro.controlflow import (
    full_predication,
    partial_predication,
)
from repro.controlflow.direct_cdfg import map_direct
from repro.controlflow.dual_issue import dual_issue, map_dual_issue
from repro.ir.cdfg import CFG
from repro.ir.dfg import Op


def branchy_cdfg():
    """if (x > t) { A[0] = x; y = x - t; } else { y = t - x; } out y*2"""
    cdfg = CFG("branchy")
    entry = cdfg.add_block(label="entry")
    eb = cdfg.block(entry).body
    x = eb.input("x")
    t = eb.input("t")
    c = eb.add(Op.GT, x, t)
    eb.output(c, "cond")
    eb.output(x, "x")
    eb.output(t, "t")

    then = cdfg.add_block(label="then")
    tb = cdfg.block(then).body
    tx, tt = tb.input("x"), tb.input("t")
    z = tb.const(0)
    tb.add(Op.STORE, z, tx, array="A")
    tb.output(tb.add(Op.SUB, tx, tt), "y")

    els = cdfg.add_block(label="else")
    ob = cdfg.block(els).body
    ox, ot = ob.input("x"), ob.input("t")
    ob.output(ob.add(Op.SUB, ot, ox), "y")

    join = cdfg.add_block(label="join")
    jb = cdfg.block(join).body
    jy = jb.input("y")
    two = jb.const(2)
    jb.output(jb.add(Op.MUL, jy, two), "out")

    cdfg.set_branch(entry, "cond", then, els)
    cdfg.set_jump(then, join)
    cdfg.set_jump(els, join)
    cdfg.set_exit(join)
    cdfg.check()
    return cdfg


def _compare():
    cdfg = branchy_cdfg()
    cgra = presets.simple_cgra(4, 4)

    partial = partial_predication(cdfg)
    full = full_predication(cdfg)
    m_partial = map_dfg(partial, cgra, mapper="list_sched")
    m_full = map_dfg(full, cgra, mapper="list_sched")
    dise_dfg, pairs = dual_issue(cdfg)
    m_dise = map_dual_issue(dise_dfg, pairs, cgra)
    direct = map_direct(cdfg, cgra)
    return cdfg, partial, full, m_partial, m_full, dise_dfg, m_dise, direct


def _slots(m):
    return len(
        {(m.binding[n], m.schedule[n] % m.ii) for n in m.binding}
    )


def test_branch_mapping_methods(benchmark):
    (cdfg, partial, full, m_partial, m_full,
     dise_dfg, m_dise, direct) = benchmark.pedantic(
        _compare, iterations=1, rounds=1
    )
    rows = [
        {
            "method": "partial predication",
            "ops": partial.op_count(),
            "mem ops": len(partial.memory_ops()),
            "II": m_partial.ii,
            "slots": _slots(m_partial),
            "contexts": m_partial.ii,
        },
        {
            "method": "full predication",
            "ops": full.op_count(),
            "mem ops": len(full.memory_ops()),
            "II": m_full.ii,
            "slots": _slots(m_full),
            "contexts": m_full.ii,
        },
        {
            "method": "dual-issue single exec",
            "ops": dise_dfg.op_count(),
            "mem ops": len(dise_dfg.memory_ops()),
            "II": m_dise.ii,
            "slots": _slots(m_dise),
            "contexts": m_dise.ii,
        },
        {
            "method": "direct CDFG",
            "ops": sum(b.body.op_count() for b in cdfg.blocks()),
            "mem ops": 1,
            "II": "-",
            "slots": "-",
            "contexts": direct.total_contexts,
        },
    ]
    print("\n" + ascii_table(rows, title="§III-B1 — ITE mapping methods"))

    # Partial predication guards the store with a load-select pair.
    assert len(partial.memory_ops()) > len(full.memory_ops())
    # Full predication routes the predicate to each arm op instead.
    preds = sum(1 for n in full.nodes() if n.pred is not None)
    assert preds >= 2
    # Dual issue overlaps opposite-arm ops: strictly fewer issue slots
    # than partial predication on the same source.
    assert _slots(m_dise) < _slots(m_partial)
    # Direct CDFG mapping executes only the taken arm...
    both = direct.path_cycles(True) + direct.path_cycles(False)
    assert direct.expected_cycles(0.5) == both / 2
    # ...but stores every block's contexts.
    assert direct.total_contexts > m_partial.ii
