"""Ablation — the approximate/exact axis of Table I, measured.

"The main feature of the exact based methods is that they can prove
the optimality, whereas heuristics may find the optimal solution, but
without the possibility to prove it."  On small instances: the exact
mappers agree on the optimal II and sometimes beat the heuristics;
the heuristics answer orders of magnitude faster — the §II-C tension
between solution quality and compilation time.
"""

from repro.arch import presets
from repro.bench import MatrixResult, ascii_table, run_matrix

EXACT = ["ilp", "sat", "csp", "bnb"]
HEURISTIC = ["list_sched", "ultrafast", "crimson"]
KERNELS = ["dot_product", "if_select", "butterfly", "sobel_x"]


def _sweep():
    cgra = presets.simple_cgra(3, 3)
    return run_matrix(EXACT + HEURISTIC, KERNELS, cgra)


def test_exact_vs_heuristic(benchmark):
    results = benchmark.pedantic(_sweep, iterations=1, rounds=1)
    print("\n" + ascii_table(
        [r.row() for r in results],
        title="Exact vs heuristic on simple3x3",
    ))
    by: dict[tuple[str, str], MatrixResult] = {
        (r.mapper, r.kernel): r for r in results
    }
    for kernel in KERNELS:
        exact_iis = {
            by[m, kernel].ii for m in EXACT if by[m, kernel].ok
        }
        # All exact mappers that succeed agree on the II they prove.
        assert len(exact_iis) <= 1, f"exact disagreement on {kernel}"
        if not exact_iis:
            continue
        (opt,) = exact_iis
        for m in HEURISTIC:
            if by[m, kernel].ok:
                assert by[m, kernel].ii >= opt, (
                    f"{m} reports II below the proven optimum on {kernel}"
                )
    # Compilation-time tension: the fastest heuristic beats the
    # fastest exact method on every kernel.
    for kernel in KERNELS:
        h = min(by[m, kernel].time_ms for m in HEURISTIC)
        e = min(by[m, kernel].time_ms for m in EXACT)
        assert h < e, f"heuristics should be faster on {kernel}"
