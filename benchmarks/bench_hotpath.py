"""Hot-path microbenchmark: flat arrays, pruned routing, parallel sweeps.

Measures the fast-path layers against their reference implementations
and writes ``BENCH_hotpath.json`` plus ``BENCH_solver.json``:

* **occupancy** — the flat-array :class:`repro.core.resources.Occupancy`
  vs the dict/Counter :class:`repro.core.refimpl.DictOccupancy` on an
  identical can/add/release/copy workload (ops/second each, ratio);
* **router** — the distance-pruned/A* :class:`Router` vs the exhaustive
  :class:`ReferenceRouter` on an identical batch of route queries
  (routes/second, explored-candidate counts, ratio);
* **matrix** — ``run_matrix`` wall-clock serial vs ``--jobs N``
  (speedup is bounded by the machine's core count, which is recorded);
* **solver** — the exact-method family: the CDCL SAT engine vs the
  retained DPLL reference driving :class:`SATMapper` on kernels and a
  mid-size random DFG (wall + decisions), plus the warm-start hooks
  (ILP MIP start, CSP value hints) re-solving an II with the prior
  assignment as the hint;
* **cache** — the content-addressed mapping cache (``BENCH_cache.json``):
  a repeated DSE sweep and a repeated compare matrix, cold (empty
  cache) vs warm (same store), with the warm results asserted
  identical to the cold *and* to a cache-disabled reference run.

Run::

    python benchmarks/bench_hotpath.py                  # full, jobs=2
    python benchmarks/bench_hotpath.py --smoke          # seconds, for CI
    python benchmarks/bench_hotpath.py --only solver    # one section
    python benchmarks/bench_hotpath.py --only cache
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.arch import presets  # noqa: E402
from repro.bench.harness import run_matrix  # noqa: E402
from repro.core.refimpl import DictOccupancy, ReferenceRouter  # noqa: E402
from repro.core.resources import Occupancy  # noqa: E402
from repro.ir import kernels, randdfg  # noqa: E402
from repro.mappers.csp_mapper import CSPMapper  # noqa: E402
from repro.mappers.ilp_temporal import ILPTemporalMapper  # noqa: E402
from repro.mappers.routing import RouteRequest, Router  # noqa: E402
from repro.mappers.sat_mapper import SATMapper  # noqa: E402
from repro.obs.tracer import (  # noqa: E402
    CANDIDATES_EXPLORED,
    SOLVER_DECISIONS,
    SOLVER_NODES,
    tracing,
)

#: documented fast-path goals (informational; the JSON records actuals)
TARGET_OCCUPANCY_SPEEDUP = 1.5
TARGET_ROUTER_SPEEDUP = 1.5
TARGET_MATRIX_SPEEDUP = 1.6  # needs >= 2 physical cores
TARGET_SAT_SPEEDUP = 2.0  # CDCL vs DPLL on the SAT-mapper workload
TARGET_CACHE_SPEEDUP = 5.0  # warm vs cold repeated-DSE sweep
TARGET_CACHE_SPEEDUP_SMOKE = 1.5  # tiny smoke workload, higher overhead


def _occupancy_workload(cgra, impl_cls, rounds: int) -> float:
    """Seconds for the shared synthetic occupancy workload."""
    rng = random.Random(42)
    links = sorted(cgra.links)
    ops = []
    for _ in range(400):
        ops.append(
            (
                rng.randrange(6),
                rng.randrange(cgra.n_cells),
                rng.randrange(64),
                rng.randrange(16),
                rng.choice(links),
            )
        )
    t0 = time.perf_counter()
    for _ in range(rounds):
        occ = impl_cls(cgra, 4)
        for kind, cell, t, value, link in ops:
            if kind == 0:
                if occ.can_place_op(cell, t):
                    occ.place_op(value, cell, t)
            elif kind == 1:
                if occ.can_route(value, cell, t):
                    occ.add_route(value, cell, t)
            elif kind == 2:
                if occ.can_hold(value, cell, t):
                    occ.add_hold(value, cell, t)
            elif kind == 3:
                if occ.can_use_link(value, *link, t):
                    occ.add_link(value, *link, t)
            elif kind == 4:
                occ.release_route(value, cell, t)
            else:
                occ.pressure()
        occ.copy()
    return time.perf_counter() - t0


def bench_occupancy(cgra, rounds: int) -> dict:
    flat = _occupancy_workload(cgra, Occupancy, rounds)
    ref = _occupancy_workload(cgra, DictOccupancy, rounds)
    return {
        "rounds": rounds,
        "flat_s": round(flat, 4),
        "dict_s": round(ref, 4),
        "flat_ops_per_s": round(rounds * 401 / flat, 1),
        "dict_ops_per_s": round(rounds * 401 / ref, 1),
        "speedup": round(ref / flat, 2),
    }


def _route_batch(cgra) -> tuple[Occupancy, list[RouteRequest]]:
    rng = random.Random(7)
    occ = Occupancy(cgra, 4)
    cells = rng.sample(range(cgra.n_cells), 8)
    for i, c in enumerate(cells):
        occ.place_op(100 + i, c, i % 4)
    reqs = []
    for i in range(24):
        src, dst = rng.sample(cells, 2)
        t0 = rng.randrange(4)
        reqs.append(
            RouteRequest(
                value=rng.randrange(8),
                src_cell=src,
                t_emit=t0,
                dst_cell=dst,
                t_consume=t0 + rng.randrange(2, 6),
            )
        )
    return occ, reqs


def _router_workload(cgra, router, rounds: int) -> tuple[float, int, int]:
    """(seconds, routes found, candidates explored) for the batch."""
    occ, reqs = _route_batch(cgra)
    found = 0
    with tracing() as tr:
        t0 = time.perf_counter()
        for _ in range(rounds):
            for req in reqs:
                if router.find(occ, req) is not None:
                    found += 1
                router.find_negotiated(occ, req)
        elapsed = time.perf_counter() - t0
    explored = tr.root.total(CANDIDATES_EXPLORED) if tr.root else sum(
        s.counters.get(CANDIDATES_EXPLORED, 0) for s in tr.roots
    ) + tr.counters.get(CANDIDATES_EXPLORED, 0)
    return elapsed, found, explored


def bench_router(cgra, rounds: int) -> dict:
    fast_s, fast_found, fast_explored = _router_workload(
        cgra, Router(cgra), rounds
    )
    ref_s, ref_found, ref_explored = _router_workload(
        cgra, ReferenceRouter(cgra), rounds
    )
    assert fast_found == ref_found, "pruned router changed results"
    n = rounds * 48  # find + find_negotiated per request
    return {
        "rounds": rounds,
        "pruned_s": round(fast_s, 4),
        "reference_s": round(ref_s, 4),
        "pruned_routes_per_s": round(n / fast_s, 1),
        "reference_routes_per_s": round(n / ref_s, 1),
        "pruned_candidates_explored": fast_explored,
        "reference_candidates_explored": ref_explored,
        "speedup": round(ref_s / fast_s, 2),
    }


def _metrics_sig(registry) -> dict:
    """Counter values and histogram event counts — the deterministic
    work totals (histogram *sums* are timings and jitter)."""
    sig = {}
    for name, data in registry.snapshot().items():
        if data.get("type") == "counter":
            sig[name] = data["value"]
        elif data.get("type") == "histogram":
            sig[f"{name}.count"] = data["count"]
    return sig


def bench_matrix(cgra, jobs: int, smoke: bool) -> dict:
    from repro.obs.metrics import MetricsRegistry, metrics_scope
    from repro.parallel import get_pool, warm_pool

    if smoke:
        mappers = ["list_sched", "edge_centric"]
        kernels = ["dot_product", "fir4"]
    else:
        mappers = ["list_sched", "edge_centric", "spr", "dresc"]
        kernels = ["dot_product", "fir4", "sobel_x"]
    # Warm the per-architecture caches so both runs start equal, and
    # the persistent pool so the parallel timing measures its steady
    # state rather than first-fork spin-up (one throwaway sweep pays
    # any remaining lazy imports in the workers).
    run_matrix(mappers[:1], kernels[:1], cgra)
    warm_pool(jobs)
    run_matrix(mappers, kernels, cgra, jobs=jobs)
    serial_reg = MetricsRegistry()
    with metrics_scope(serial_reg):
        t0 = time.perf_counter()
        serial = run_matrix(mappers, kernels, cgra)
        serial_s = time.perf_counter() - t0
    parallel_reg = MetricsRegistry()
    with metrics_scope(parallel_reg):
        t0 = time.perf_counter()
        parallel = run_matrix(mappers, kernels, cgra, jobs=jobs)
        parallel_s = time.perf_counter() - t0
    same = [
        (a.mapper, a.kernel, a.ok, a.ii) for a in serial
    ] == [(b.mapper, b.kernel, b.ok, b.ii) for b in parallel]
    assert same, "parallel matrix changed results"
    assert _metrics_sig(serial_reg) == _metrics_sig(parallel_reg), (
        "parallel matrix changed work totals"
    )
    pool = get_pool(jobs)
    report = {
        "jobs": jobs,
        "cells": len(serial),
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 2),
        "metrics_equal": True,
        "pool": {
            "workers": pool.size,
            "batches": pool.batches,
            "tasks_run": pool.tasks_run,
            "respawns": pool.respawns,
        },
    }
    # The >=1.6x target presumes real parallel hardware and the full
    # workload; on a 1-core box the number only measures pool overhead,
    # and smoke's cells are too short to amortise dispatch — mark the
    # target skipped in both cases instead of recording a fake verdict.
    if (os.cpu_count() or 1) < 2:
        report["target_skipped"] = (
            f"cpu_count={os.cpu_count()} < 2: speedup reflects pool"
            " overhead, not parallelism"
        )
    elif smoke:
        report["target_skipped"] = (
            "smoke workload too short for the speedup target"
        )
    else:
        report["target_met"] = report["speedup"] >= TARGET_MATRIX_SPEEDUP
    return report


def _matrix_sig(rows) -> list[tuple]:
    return [
        (r.mapper, r.kernel, r.ok, r.ii, r.schedule_length,
         r.route_steps)
        for r in rows
    ]


def bench_cache(smoke: bool) -> dict:
    """Cold-vs-warm mapping-cache runs; results asserted identical."""
    import tempfile

    from repro.cache import MappingCache
    from repro.dse.explorer import default_space, explore

    if smoke:
        space = [
            {"size": 4, "topology": t, "rf_size": 2, "mem_cells": "left"}
            for t in ("mesh", "diagonal")
        ]
        suite = ["dot_product", "fir4"]
        dse_mapper = "list_sched"
        mappers = ["list_sched", "edge_centric"]
        mat_kernels = ["dot_product", "fir4"]
    else:
        space = default_space()
        suite = ["dot_product", "fir4", "sobel_x", "if_select"]
        dse_mapper = "spr"
        mappers = ["list_sched", "edge_centric", "spr", "dresc"]
        mat_kernels = ["dot_product", "fir4", "sobel_x"]

    # Repeated DSE sweep: reference (cache off), cold fill, warm replay.
    reference = explore(space, suite, mapper=dse_mapper, cache=False)
    store = MappingCache(tempfile.mkdtemp(prefix="repro-bench-cache-"))
    t0 = time.perf_counter()
    cold_pts = explore(space, suite, mapper=dse_mapper, cache=store)
    cold_s = time.perf_counter() - t0
    cold_stats = store.stats.as_dict()
    t0 = time.perf_counter()
    warm_pts = explore(space, suite, mapper=dse_mapper, cache=store)
    warm_s = time.perf_counter() - t0
    assert reference == cold_pts == warm_pts, "cache changed DSE results"
    assert store.stats.validation_failures == 0
    dse = {
        "points": len(space),
        "suite": suite,
        "mapper": dse_mapper,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "cold_stats": cold_stats,
        "stats": store.stats.as_dict(),
        "speedup": round(cold_s / max(warm_s, 1e-9), 2),
    }

    # Repeated compare matrix, same shape.
    cgra = presets.simple_cgra(4, 4)
    mat_ref = run_matrix(mappers, mat_kernels, cgra, cache=False)
    store2 = MappingCache(tempfile.mkdtemp(prefix="repro-bench-cache-"))
    t0 = time.perf_counter()
    mat_cold = run_matrix(mappers, mat_kernels, cgra, cache=store2)
    mat_cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    mat_warm = run_matrix(mappers, mat_kernels, cgra, cache=store2)
    mat_warm_s = time.perf_counter() - t0
    assert _matrix_sig(mat_ref) == _matrix_sig(mat_cold) == _matrix_sig(
        mat_warm
    ), "cache changed matrix results"
    assert store2.stats.validation_failures == 0
    matrix = {
        "cells": len(mat_ref),
        "mappers": mappers,
        "kernels": mat_kernels,
        "cold_s": round(mat_cold_s, 4),
        "warm_s": round(mat_warm_s, 4),
        "stats": store2.stats.as_dict(),
        "speedup": round(mat_cold_s / max(mat_warm_s, 1e-9), 2),
    }
    return {"dse": dse, "matrix": matrix}


def _sat_run(dfg, cgra, engine: str, ii: int | None) -> dict:
    """One SATMapper run: best II, wall seconds, SAT decisions."""
    with tracing() as tr:
        t0 = time.perf_counter()
        mapping = SATMapper(engine=engine).map(dfg, cgra, ii=ii)
        elapsed = time.perf_counter() - t0
    decisions = sum(s.total(SOLVER_DECISIONS) for s in tr.roots)
    return {
        "ii": mapping.ii,
        "wall_s": round(elapsed, 4),
        "decisions": decisions,
    }


def _counted(fn) -> tuple[object, float, int]:
    """(result, wall seconds, solver nodes) for a traced call."""
    with tracing() as tr:
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
    nodes = sum(s.total(SOLVER_NODES) for s in tr.roots) + tr.counters.get(
        SOLVER_NODES, 0
    )
    return result, elapsed, nodes


def bench_solver(smoke: bool) -> dict:
    """CDCL-vs-DPLL SAT mapping plus ILP/CSP warm-start re-solves."""
    cgra = presets.simple_cgra(3, 3)
    # SAT workloads: kernels escalate II from the lower bound; the
    # random layered DFG is pinned to its known-feasible II (the DPLL
    # escalation through the infeasible IIs below it takes minutes).
    workloads: list[tuple[str, object, int | None]] = [
        ("dot_product", kernels.kernel("dot_product"), None),
        ("fir4", kernels.kernel("fir4"), None),
    ]
    if not smoke:
        workloads += [
            ("sobel_x", kernels.kernel("sobel_x"), None),
            ("layered8_s1@ii3", randdfg.layered(8, seed=1), 3),
        ]
    # Warm the per-architecture caches so both engines start equal.
    SATMapper().map(kernels.kernel("dot_product"), cgra)

    sat_rows = []
    for name, dfg, ii in workloads:
        cdcl = _sat_run(dfg, cgra, "cdcl", ii)
        dpll = _sat_run(dfg, cgra, "dpll", ii)
        assert cdcl["ii"] == dpll["ii"], f"engines disagree on {name}"
        sat_rows.append(
            {
                "workload": name,
                "ii": cdcl["ii"],
                "cdcl": cdcl,
                "dpll": dpll,
                "wall_speedup": round(
                    dpll["wall_s"] / max(cdcl["wall_s"], 1e-9), 2
                ),
                "decision_speedup": round(
                    dpll["decisions"] / max(cdcl["decisions"], 1), 2
                ),
            }
        )
    total_cdcl = sum(r["cdcl"]["wall_s"] for r in sat_rows)
    total_dpll = sum(r["dpll"]["wall_s"] for r in sat_rows)
    dec_cdcl = sum(r["cdcl"]["decisions"] for r in sat_rows)
    dec_dpll = sum(r["dpll"]["decisions"] for r in sat_rows)
    sat = {
        "engine_fast": "cdcl",
        "engine_reference": "dpll",
        "workloads": sat_rows,
        "wall_speedup": round(total_dpll / max(total_cdcl, 1e-9), 2),
        "decision_speedup": round(dec_dpll / max(dec_cdcl, 1), 2),
    }

    # Warm-start re-solves: solve an II cold, then the same model again
    # with the cold assignment as the hint — the shape of II escalation
    # and route-round retries, where the previous solution usually
    # survives.  The ILP MIP start admits the incumbent without
    # branching; the CSP value hints walk straight to the solution.
    fir4 = kernels.kernel("fir4")

    ilp_mapper = ILPTemporalMapper()
    cold_assign, ilp_cold_s, ilp_cold_nodes = _counted(
        lambda: ilp_mapper._solve(fir4, cgra, 2)
    )
    assert cold_assign is not None, "ILP cold solve failed"
    warm_assign, ilp_warm_s, ilp_warm_nodes = _counted(
        lambda: ilp_mapper._solve(fir4, cgra, 2, hint=cold_assign)
    )
    assert warm_assign is not None, "ILP warm solve failed"
    ilp = {
        "workload": "fir4@ii2",
        "cold": {"wall_s": round(ilp_cold_s, 4), "nodes": ilp_cold_nodes},
        "warm": {"wall_s": round(ilp_warm_s, 4), "nodes": ilp_warm_nodes},
        "wall_speedup": round(ilp_cold_s / max(ilp_warm_s, 1e-9), 2),
    }

    conv = kernels.kernel("conv3x3")
    csp_mapper = CSPMapper()
    csp_cold, csp_cold_s, csp_cold_nodes = _counted(
        lambda: csp_mapper._solve(conv, cgra, 3)
    )
    assert csp_cold is not None, "CSP cold solve failed"
    csp_warm, csp_warm_s, csp_warm_nodes = _counted(
        lambda: csp_mapper._solve(conv, cgra, 3, hint=csp_cold)
    )
    assert csp_warm is not None, "CSP warm solve failed"
    csp = {
        "workload": "conv3x3@ii3",
        "cold": {"wall_s": round(csp_cold_s, 4), "nodes": csp_cold_nodes},
        "warm": {"wall_s": round(csp_warm_s, 4), "nodes": csp_warm_nodes},
        "node_ratio": round(csp_cold_nodes / max(csp_warm_nodes, 1), 2),
    }

    return {"sat": sat, "ilp_warm_start": ilp, "csp_value_hints": csp}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--smoke", action="store_true",
        help="tiny workloads: verifies the harness, not the numbers",
    )
    ap.add_argument("--jobs", type=int, default=2)
    ap.add_argument(
        "--only",
        choices=["occupancy", "router", "matrix", "solver", "cache"],
        action="append",
        help="run only the named section(s); default: all",
    )
    ap.add_argument(
        "--out", default=str(Path(__file__).parent / "BENCH_hotpath.json")
    )
    ap.add_argument(
        "--out-solver",
        default=str(Path(__file__).parent / "BENCH_solver.json"),
    )
    ap.add_argument(
        "--out-cache",
        default=str(Path(__file__).parent / "BENCH_cache.json"),
    )
    args = ap.parse_args(argv)
    sections = args.only or [
        "occupancy", "router", "matrix", "solver", "cache"
    ]

    cgra = presets.simple_cgra(4, 4)
    occ_rounds = 20 if args.smoke else 300
    route_rounds = 5 if args.smoke else 60

    ok = True
    summary = []

    hotpath_sections = [
        s for s in sections if s in ("occupancy", "router", "matrix")
    ]
    if hotpath_sections:
        report = {
            "benchmark": "hotpath",
            "smoke": args.smoke,
            "machine": {"cpu_count": os.cpu_count()},
            "targets": {
                "occupancy_speedup": TARGET_OCCUPANCY_SPEEDUP,
                "router_speedup": TARGET_ROUTER_SPEEDUP,
                "matrix_speedup_at_2_cores": TARGET_MATRIX_SPEEDUP,
            },
        }
        if "occupancy" in sections:
            report["occupancy"] = bench_occupancy(cgra, occ_rounds)
            ok &= report["occupancy"]["speedup"] >= 1.0
            summary.append(f"occupancy x{report['occupancy']['speedup']}")
        if "router" in sections:
            report["router"] = bench_router(cgra, route_rounds)
            ok &= report["router"]["speedup"] >= 1.0
            summary.append(f"router x{report['router']['speedup']}")
        if "matrix" in sections:
            report["matrix"] = bench_matrix(cgra, args.jobs, args.smoke)
            if "target_met" in report["matrix"]:
                ok &= report["matrix"]["target_met"]
            summary.append(
                f"matrix x{report['matrix']['speedup']}"
                f" (jobs={args.jobs}, {os.cpu_count()} core(s))"
            )
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(json.dumps(report, indent=2))

    if "solver" in sections:
        solver = {
            "benchmark": "solver",
            "smoke": args.smoke,
            "machine": {"cpu_count": os.cpu_count()},
            "targets": {"sat_speedup": TARGET_SAT_SPEEDUP},
            **bench_solver(args.smoke),
        }
        Path(args.out_solver).write_text(
            json.dumps(solver, indent=2) + "\n"
        )
        print(json.dumps(solver, indent=2))
        # Decisions are deterministic, so the threshold holds even on a
        # noisy CI box; smoke's tiny workloads still clear 2x.
        ok &= solver["sat"]["decision_speedup"] >= TARGET_SAT_SPEEDUP
        summary.append(
            f"sat x{solver['sat']['wall_speedup']} wall"
            f" / x{solver['sat']['decision_speedup']} decisions"
        )

    if "cache" in sections:
        target = (
            TARGET_CACHE_SPEEDUP_SMOKE if args.smoke
            else TARGET_CACHE_SPEEDUP
        )
        cache_report = {
            "benchmark": "cache",
            "smoke": args.smoke,
            "machine": {"cpu_count": os.cpu_count()},
            "targets": {"warm_dse_speedup": target},
            **bench_cache(args.smoke),
        }
        Path(args.out_cache).write_text(
            json.dumps(cache_report, indent=2) + "\n"
        )
        print(json.dumps(cache_report, indent=2))
        ok &= cache_report["dse"]["speedup"] >= target
        summary.append(
            f"cache x{cache_report['dse']['speedup']} dse"
            f" / x{cache_report['matrix']['speedup']} matrix"
        )

    print("\n" + "  ".join(summary))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
