"""Hot-path microbenchmark: flat arrays, pruned routing, parallel sweeps.

Measures the three fast-path layers against their reference
implementations and writes ``BENCH_hotpath.json``:

* **occupancy** — the flat-array :class:`repro.core.resources.Occupancy`
  vs the dict/Counter :class:`repro.core.refimpl.DictOccupancy` on an
  identical can/add/release/copy workload (ops/second each, ratio);
* **router** — the distance-pruned/A* :class:`Router` vs the exhaustive
  :class:`ReferenceRouter` on an identical batch of route queries
  (routes/second, explored-candidate counts, ratio);
* **matrix** — ``run_matrix`` wall-clock serial vs ``--jobs N``
  (speedup is bounded by the machine's core count, which is recorded).

Run::

    python benchmarks/bench_hotpath.py            # full, jobs=2
    python benchmarks/bench_hotpath.py --smoke    # seconds, for CI
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.arch import presets  # noqa: E402
from repro.bench.harness import run_matrix  # noqa: E402
from repro.core.refimpl import DictOccupancy, ReferenceRouter  # noqa: E402
from repro.core.resources import Occupancy  # noqa: E402
from repro.mappers.routing import RouteRequest, Router  # noqa: E402
from repro.obs.tracer import CANDIDATES_EXPLORED, tracing  # noqa: E402

#: documented fast-path goals (informational; the JSON records actuals)
TARGET_OCCUPANCY_SPEEDUP = 1.5
TARGET_ROUTER_SPEEDUP = 1.5
TARGET_MATRIX_SPEEDUP = 1.7  # needs >= 2 physical cores


def _occupancy_workload(cgra, impl_cls, rounds: int) -> float:
    """Seconds for the shared synthetic occupancy workload."""
    rng = random.Random(42)
    links = sorted(cgra.links)
    ops = []
    for _ in range(400):
        ops.append(
            (
                rng.randrange(6),
                rng.randrange(cgra.n_cells),
                rng.randrange(64),
                rng.randrange(16),
                rng.choice(links),
            )
        )
    t0 = time.perf_counter()
    for _ in range(rounds):
        occ = impl_cls(cgra, 4)
        for kind, cell, t, value, link in ops:
            if kind == 0:
                if occ.can_place_op(cell, t):
                    occ.place_op(value, cell, t)
            elif kind == 1:
                if occ.can_route(value, cell, t):
                    occ.add_route(value, cell, t)
            elif kind == 2:
                if occ.can_hold(value, cell, t):
                    occ.add_hold(value, cell, t)
            elif kind == 3:
                if occ.can_use_link(value, *link, t):
                    occ.add_link(value, *link, t)
            elif kind == 4:
                occ.release_route(value, cell, t)
            else:
                occ.pressure()
        occ.copy()
    return time.perf_counter() - t0


def bench_occupancy(cgra, rounds: int) -> dict:
    flat = _occupancy_workload(cgra, Occupancy, rounds)
    ref = _occupancy_workload(cgra, DictOccupancy, rounds)
    return {
        "rounds": rounds,
        "flat_s": round(flat, 4),
        "dict_s": round(ref, 4),
        "flat_ops_per_s": round(rounds * 401 / flat, 1),
        "dict_ops_per_s": round(rounds * 401 / ref, 1),
        "speedup": round(ref / flat, 2),
    }


def _route_batch(cgra) -> tuple[Occupancy, list[RouteRequest]]:
    rng = random.Random(7)
    occ = Occupancy(cgra, 4)
    cells = rng.sample(range(cgra.n_cells), 8)
    for i, c in enumerate(cells):
        occ.place_op(100 + i, c, i % 4)
    reqs = []
    for i in range(24):
        src, dst = rng.sample(cells, 2)
        t0 = rng.randrange(4)
        reqs.append(
            RouteRequest(
                value=rng.randrange(8),
                src_cell=src,
                t_emit=t0,
                dst_cell=dst,
                t_consume=t0 + rng.randrange(2, 6),
            )
        )
    return occ, reqs


def _router_workload(cgra, router, rounds: int) -> tuple[float, int, int]:
    """(seconds, routes found, candidates explored) for the batch."""
    occ, reqs = _route_batch(cgra)
    found = 0
    with tracing() as tr:
        t0 = time.perf_counter()
        for _ in range(rounds):
            for req in reqs:
                if router.find(occ, req) is not None:
                    found += 1
                router.find_negotiated(occ, req)
        elapsed = time.perf_counter() - t0
    explored = tr.root.total(CANDIDATES_EXPLORED) if tr.root else sum(
        s.counters.get(CANDIDATES_EXPLORED, 0) for s in tr.roots
    ) + tr.counters.get(CANDIDATES_EXPLORED, 0)
    return elapsed, found, explored


def bench_router(cgra, rounds: int) -> dict:
    fast_s, fast_found, fast_explored = _router_workload(
        cgra, Router(cgra), rounds
    )
    ref_s, ref_found, ref_explored = _router_workload(
        cgra, ReferenceRouter(cgra), rounds
    )
    assert fast_found == ref_found, "pruned router changed results"
    n = rounds * 48  # find + find_negotiated per request
    return {
        "rounds": rounds,
        "pruned_s": round(fast_s, 4),
        "reference_s": round(ref_s, 4),
        "pruned_routes_per_s": round(n / fast_s, 1),
        "reference_routes_per_s": round(n / ref_s, 1),
        "pruned_candidates_explored": fast_explored,
        "reference_candidates_explored": ref_explored,
        "speedup": round(ref_s / fast_s, 2),
    }


def bench_matrix(cgra, jobs: int, smoke: bool) -> dict:
    if smoke:
        mappers = ["list_sched", "edge_centric"]
        kernels = ["dot_product", "fir4"]
    else:
        mappers = ["list_sched", "edge_centric", "spr", "dresc"]
        kernels = ["dot_product", "fir4", "sobel_x"]
    # Warm the per-architecture caches so both runs start equal.
    run_matrix(mappers[:1], kernels[:1], cgra)
    t0 = time.perf_counter()
    serial = run_matrix(mappers, kernels, cgra)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_matrix(mappers, kernels, cgra, jobs=jobs)
    parallel_s = time.perf_counter() - t0
    same = [
        (a.mapper, a.kernel, a.ok, a.ii) for a in serial
    ] == [(b.mapper, b.kernel, b.ok, b.ii) for b in parallel]
    assert same, "parallel matrix changed results"
    return {
        "jobs": jobs,
        "cells": len(serial),
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 2),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--smoke", action="store_true",
        help="tiny workloads: verifies the harness, not the numbers",
    )
    ap.add_argument("--jobs", type=int, default=2)
    ap.add_argument(
        "--out", default=str(Path(__file__).parent / "BENCH_hotpath.json")
    )
    args = ap.parse_args(argv)

    cgra = presets.simple_cgra(4, 4)
    occ_rounds = 20 if args.smoke else 300
    route_rounds = 5 if args.smoke else 60

    report = {
        "benchmark": "hotpath",
        "smoke": args.smoke,
        "machine": {"cpu_count": os.cpu_count()},
        "targets": {
            "occupancy_speedup": TARGET_OCCUPANCY_SPEEDUP,
            "router_speedup": TARGET_ROUTER_SPEEDUP,
            "matrix_speedup_at_2_cores": TARGET_MATRIX_SPEEDUP,
        },
        "occupancy": bench_occupancy(cgra, occ_rounds),
        "router": bench_router(cgra, route_rounds),
        "matrix": bench_matrix(cgra, args.jobs, args.smoke),
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    ok = (
        report["occupancy"]["speedup"] >= 1.0
        and report["router"]["speedup"] >= 1.0
    )
    print(
        f"\noccupancy x{report['occupancy']['speedup']}"
        f"  router x{report['router']['speedup']}"
        f"  matrix x{report['matrix']['speedup']}"
        f" (jobs={args.jobs}, {os.cpu_count()} core(s))"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
