"""Fig. 4 — two decades of CGRA mapping publications.

Regenerates the histogram and era annotations from the structured
bibliography and asserts the figure's stated shape: the community
"intensified the efforts in the last decade, with a clear increase in
2021"; modulo scheduling present from the beginning; branch support
from the early 2000s; memory-aware methods around 2010.
"""

from repro.survey.timeline import (
    era_onsets,
    publications_per_year,
    render_timeline,
)


def test_fig4_timeline(benchmark):
    counts = benchmark(publications_per_year)
    print("\n" + render_timeline())

    first_decade = sum(counts[y] for y in range(2000, 2011))
    second_decade = sum(counts[y] for y in range(2011, 2022))
    assert second_decade > first_decade, "effort intensified after 2010"
    assert counts[2021] == max(counts.values()), "clear increase in 2021"

    onsets = era_onsets()
    assert onsets["Modulo scheduling"] <= 2000   # "since the beginning"
    assert 2002 <= onsets["Full predication"] <= 2008  # early 2000s
    assert 2008 <= onsets["Memory aware"] <= 2012      # "around 2010"
    assert onsets["Hardware loops"] >= 2015
