"""§IV-B(b) — the scalability challenge.

"While legacy CGRAs are composed of tens of cells … modern CGRAs
contain hundreds to thousands."  HiMap's [26] published comparison is
against DRESC-lineage simulated annealing — hierarchy turns hours of
annealing into seconds of constructive mapping at comparable quality.
This bench reproduces that shape in miniature: array sizes sweep from
4x4 to 6x6 at constant ~60% utilisation; the SA mapper's time blows
up with the array while the hierarchical mapper stays constructive-
fast, and the IIs remain comparable.  (At 8x8 the annealer already
needs minutes — the bench stops where the point is made.)

Run as a script with ``--large`` for the *spatial* half of the same
story: dataflow chains of 100-200 ops on a 16x16 fabric, the clustered
two-phase placer against the flat spatial annealer and DRESC.  Emits
``BENCH_scale.json`` (committed) with the headline claim machine-
checked: the 200-op chain places in seconds via partition + analytical
seed + batched refinement, while the flat annealer fails outright and
the annealing-based alternatives that do finish need an order of
magnitude longer.
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.arch import presets
from repro.bench import ascii_table
from repro.core.exceptions import MapFailure
from repro.core.registry import create
from repro.ir import kernels, randdfg
from repro.parallel import TaskTimeout, time_limit

SIZES = [4, 5, 6]

#: --large sweep: chain lengths on the 16x16 fabric, and the per-cell
#: wall-clock budget.  The chain is the canonical bandwidth-friendly
#: scaling instance (``layered:N:1:1`` — see repro.ir.kernels spec
#: names); braided graphs stress routability instead and are covered
#: by the fuzzer.
LARGE_ARCH = "simple16x16"
LARGE_SIZES = [100, 150, 200]
LARGE_TIMEOUT = 60.0
#: cluster vs the flat spatial annealer and the spatial force-directed
#: mapper (like-for-like: all three emit one-cell-per-op spatial
#: bindings), with DRESC as the temporal reference point — it solves a
#: different problem (modulo schedule, II >= 1, values in RFs), so its
#: row contextualises the wall-clock but does not gate the target.
LARGE_MAPPERS = ("cluster", "sa_spatial", "graph_drawing", "dresc")
LARGE_FLAGSHIP_ONLY = ("graph_drawing",)  # minutes-slow: flagship cell only

#: Extra-large fabrics: the clustered placer on the 150-op chain.
#: The 32x32 cell gates (it must keep succeeding inside the budget);
#: the 64x64 cell is informational — it demonstrates the flat routing
#: core holds up at 4096 cells, but a slow CI box must not fail the
#: bench over it.
XL_CELLS = (
    ("simple32x32", "layered:150:1:1", True),
    ("simple64x64", "layered:150:1:1", False),
)

#: Routing-engine comparison (DESIGN.md §13): PathFinder negotiation
#: over displaced-serpentine placements of the 150-op chain on 32x32 —
#: mostly dedicated corridors plus every-k-th-op contention pockets,
#: the mid-anneal shape where incremental rip-up shines.  The flat
#: incremental engine must beat the scalar reference by
#: ``ROUTE_TARGET_SPEEDUP`` with identical success.
ROUTE_ARCH = "simple32x32"
ROUTE_KERNEL = "layered:150:1:1"
ROUTE_DISPLACEMENTS = (3, 5)
ROUTE_TARGET_SPEEDUP = 3.0


def _sweep():
    rows = []
    times = {"dresc": {}, "himap": {}}
    iis = {"dresc": {}, "himap": {}}
    for size in SIZES:
        cgra = presets.simple_cgra(size, size)
        # ~0.6 ops per cell keeps utilisation constant across sizes.
        n_ops = int(0.6 * size * size)
        dfg = randdfg.layered(n_ops, width=max(2, size // 2), seed=7)
        for mname in ("dresc", "himap"):
            t0 = time.perf_counter()
            mapping = create(mname).map(dfg, cgra)
            dt = time.perf_counter() - t0
            times[mname][size] = dt
            iis[mname][size] = mapping.ii
            rows.append(
                {
                    "cells": size * size,
                    "ops": dfg.op_count(),
                    "mapper": mname,
                    "II": mapping.ii,
                    "time_s": round(dt, 3),
                }
            )
    return rows, times, iis


def test_scalability_sweep(benchmark):
    rows, times, iis = benchmark.pedantic(
        _sweep, iterations=1, rounds=1
    )
    print("\n" + ascii_table(rows, title="§IV-B — scalability sweep"))
    big = SIZES[-1]
    # The claim in miniature: on the largest array the hierarchical
    # mapper is at least 3x faster than annealing...
    assert times["himap"][big] * 3 < times["dresc"][big], (
        f"himap {times['himap'][big]:.1f}s vs dresc"
        f" {times['dresc'][big]:.1f}s"
    )
    # ...at comparable quality (II within 2x of the SA result).
    assert iis["himap"][big] <= 2 * iis["dresc"][big]
    # And annealing's time grows faster than the hierarchy's.
    growth_sa = times["dresc"][big] / max(times["dresc"][SIZES[0]], 1e-9)
    print(
        f"\nSA time growth {SIZES[0]}x{SIZES[0]} -> {big}x{big}:"
        f" x{growth_sa:.1f}; hierarchical stays"
        f" {times['himap'][big]:.2f}s"
    )
    assert growth_sa > 3.0


# ---------------------------------------------------------------------------
# --large: spatial placement at 16x16 scale
# ---------------------------------------------------------------------------
def _large_cell(
    mname: str, kname: str, cgra, timeout: float
) -> dict:
    dfg = kernels.kernel(kname)
    mapper = create(mname, seed=0)
    t0 = time.perf_counter()
    try:
        with time_limit(timeout):
            mapping = mapper.map(dfg, cgra)
        dt = time.perf_counter() - t0
        return {
            "mapper": mname,
            "kernel": kname,
            "ok": mapping.validate(raise_on_error=False) == [],
            "kind": mapping.kind,
            "time_s": round(dt, 3),
        }
    except (MapFailure, TaskTimeout) as ex:
        dt = time.perf_counter() - t0
        return {
            "mapper": mname,
            "kernel": kname,
            "ok": False,
            "kind": None,
            "time_s": round(dt, 3),
            "error": type(ex).__name__,
        }


# ---------------------------------------------------------------------------
# routing-engine comparison (flat vs scalar negotiation)
# ---------------------------------------------------------------------------
def _serpentine_binding(dfg, cgra, displace_every: int) -> dict:
    """Chain ops on the even (x, y) sub-lattice, serpentine order, with
    every ``displace_every``-th op nudged one cell diagonally.

    The undisplaced layout gives every edge its own two-hop corridor
    (trivial negotiation); each displaced op drags its two incident
    edges across a neighbour's corridor, creating the local contention
    pockets a mid-anneal placement exhibits.  All placements here are
    collision-free by construction on a >= 32x32 fabric.
    """
    nodes = [n.nid for n in dfg.nodes() if not n.op.is_pseudo]
    binding = {}
    for i, nid in enumerate(nodes):
        row, col = i // 16, i % 16
        x = 2 * col if row % 2 == 0 else 2 * (15 - col)
        y = 2 * row
        if displace_every and i % displace_every == displace_every - 1:
            x = min(x + 1, cgra.width - 1)
            y = min(y + 1, cgra.height - 1)
        binding[nid] = cgra.cell_at(x, y).cid
    if len(set(binding.values())) != len(binding):
        raise AssertionError("serpentine placement collided")
    return binding


def _time_route(dfg, cgra, binding, engine, incremental, budget_s=1.5):
    """(best-of wall-clock seconds, converged?) for one engine."""
    from repro.mappers.spatial_common import route_negotiated

    best = float("inf")
    ok = False
    t_start = time.perf_counter()
    reps = 0
    while reps < 3 or time.perf_counter() - t_start < budget_s:
        t0 = time.perf_counter()
        routes = route_negotiated(
            dfg, cgra, binding, engine=engine, incremental=incremental
        )
        best = min(best, time.perf_counter() - t0)
        ok = routes is not None
        reps += 1
        if reps >= 200:
            break
    return best, ok


def route_sweep() -> dict:
    """Flat-vs-scalar negotiated routing; the ``route`` report block."""
    cgra = presets.by_name(ROUTE_ARCH)
    dfg = kernels.kernel(ROUTE_KERNEL)
    engines = (
        ("scalar", "scalar", False),
        ("flat_full", "flat", False),
        ("flat_inc", "flat", True),
    )
    rows = []
    totals = {label: 0.0 for label, _, _ in engines}
    success_equal = True
    for k in ROUTE_DISPLACEMENTS:
        binding = _serpentine_binding(dfg, cgra, k)
        times, oks = {}, {}
        for label, engine, inc in engines:
            t, ok = _time_route(dfg, cgra, binding, engine, inc)
            times[label], oks[label] = t, ok
            totals[label] += t
        success_equal = success_equal and (
            oks["scalar"] == oks["flat_full"] == oks["flat_inc"]
        )
        rows.append(
            {
                "displace_every": k,
                "converged": oks["scalar"],
                "scalar_ms": round(1000 * times["scalar"], 2),
                "flat_full_ms": round(1000 * times["flat_full"], 2),
                "flat_inc_ms": round(1000 * times["flat_inc"], 2),
                "speedup_full": round(
                    times["scalar"] / times["flat_full"], 2
                ),
                "speedup_inc": round(
                    times["scalar"] / times["flat_inc"], 2
                ),
            }
        )
    speedup_inc = totals["scalar"] / totals["flat_inc"]
    return {
        "arch": ROUTE_ARCH,
        "kernel": ROUTE_KERNEL,
        "target_speedup": ROUTE_TARGET_SPEEDUP,
        "cells": rows,
        "speedup_full": round(totals["scalar"] / totals["flat_full"], 2),
        "speedup_inc": round(speedup_inc, 2),
        "equal_success": success_equal,
        "ok": success_equal and speedup_inc >= ROUTE_TARGET_SPEEDUP,
    }


def large_sweep(timeout: float = LARGE_TIMEOUT) -> dict:
    """The 16x16 chain sweep; returns the BENCH_scale.json payload."""
    cgra = presets.by_name(LARGE_ARCH)
    flagship = f"layered:{LARGE_SIZES[-1]}:1:1"
    cells = []
    for n in LARGE_SIZES:
        kname = f"layered:{n}:1:1"
        for mname in LARGE_MAPPERS:
            if mname in LARGE_FLAGSHIP_ONLY and kname != flagship:
                continue
            cells.append(_large_cell(mname, kname, cgra, timeout))
    by = {(c["mapper"], c["kernel"]): c for c in cells}
    ours = by[("cluster", flagship)]
    # The headline: cluster places the 200-op chain, and every mapper
    # attacking the *same problem* (a spatial binding) either
    # fails/times out or needs >= 10x the wall-clock.  DRESC's modulo
    # row is reported alongside for scale (it maps temporally, at
    # II >= 1 — not the one-result-per-cycle spatial artifact).
    outscaled = all(
        (not by[(m, flagship)]["ok"])
        or by[(m, flagship)]["time_s"] >= 10 * ours["time_s"]
        for m in LARGE_MAPPERS
        if m != "cluster"
        and by[(m, flagship)].get("kind") in (None, "spatial")
    )
    dresc = by.get(("dresc", flagship))
    # Extra-large fabrics (32x32 gating, 64x64 informational).
    xl_cells = []
    xl_ok = True
    for arch, kname, gating in XL_CELLS:
        cell = _large_cell(
            "cluster", kname, presets.by_name(arch), timeout
        )
        cell["arch"] = arch
        cell["gating"] = gating
        xl_cells.append(cell)
        if gating:
            xl_ok = xl_ok and cell["ok"]
    # Flat vs scalar negotiated routing (DESIGN.md §13).
    route = route_sweep()
    return {
        "benchmark": "scalability-large",
        "arch": LARGE_ARCH,
        "timeout_s": timeout,
        "machine": {"cpu_count": os.cpu_count()},
        "targets": {
            "cluster_maps_200_op_chain": True,
            "spatial_competitors_fail_or_10x_slower": True,
            "cluster_maps_chain_on_32x32": True,
            "flat_incremental_routing_3x": True,
        },
        "cells": cells,
        "xl_cells": xl_cells,
        "route": route,
        "cluster_ok_at_200": ours["ok"],
        "spatial_competitors_fail_or_10x_slower": outscaled,
        "dresc_temporal_reference_ratio": (
            round(dresc["time_s"] / max(ours["time_s"], 1e-9), 2)
            if dresc and dresc["ok"]
            else None
        ),
        "target_met": ours["ok"] and outscaled and xl_ok and route["ok"],
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--large", action="store_true",
        help="run the 16x16 spatial sweep and emit BENCH_scale.json",
    )
    ap.add_argument(
        "--timeout", type=float, default=LARGE_TIMEOUT, metavar="S",
        help=f"per-cell wall-clock budget (default {LARGE_TIMEOUT})",
    )
    ap.add_argument(
        "--out",
        default=str(Path(__file__).parent / "BENCH_scale.json"),
        help="output path for the JSON report",
    )
    args = ap.parse_args(argv)
    if not args.large:
        ap.error("this entry point only implements --large "
                 "(the small sweep runs under pytest-benchmark)")
    report = large_sweep(args.timeout)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(ascii_table(
        [
            {k: ("-" if v is None else v) for k, v in c.items()}
            for c in report["cells"]
        ],
        title="16x16 spatial scaling sweep",
    ))
    print("\n" + ascii_table(
        [
            {k: ("-" if v is None else v) for k, v in c.items()}
            for c in report["xl_cells"]
        ],
        title="extra-large fabrics (cluster)",
    ))
    route = report["route"]
    print("\n" + ascii_table(
        route["cells"],
        title=(
            f"negotiated routing, {route['arch']}/{route['kernel']}"
            f" (flat-inc {route['speedup_inc']}x, target"
            f" {route['target_speedup']}x)"
        ),
    ))
    print(f"\ntarget_met={report['target_met']} -> {args.out}")
    return 0 if report["target_met"] else 1


if __name__ == "__main__":
    sys.exit(main())
