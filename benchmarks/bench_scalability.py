"""§IV-B(b) — the scalability challenge.

"While legacy CGRAs are composed of tens of cells … modern CGRAs
contain hundreds to thousands."  HiMap's [26] published comparison is
against DRESC-lineage simulated annealing — hierarchy turns hours of
annealing into seconds of constructive mapping at comparable quality.
This bench reproduces that shape in miniature: array sizes sweep from
4x4 to 6x6 at constant ~60% utilisation; the SA mapper's time blows
up with the array while the hierarchical mapper stays constructive-
fast, and the IIs remain comparable.  (At 8x8 the annealer already
needs minutes — the bench stops where the point is made.)
"""

import time

from repro.arch import presets
from repro.bench import ascii_table
from repro.core.registry import create
from repro.ir import randdfg

SIZES = [4, 5, 6]


def _sweep():
    rows = []
    times = {"dresc": {}, "himap": {}}
    iis = {"dresc": {}, "himap": {}}
    for size in SIZES:
        cgra = presets.simple_cgra(size, size)
        # ~0.6 ops per cell keeps utilisation constant across sizes.
        n_ops = int(0.6 * size * size)
        dfg = randdfg.layered(n_ops, width=max(2, size // 2), seed=7)
        for mname in ("dresc", "himap"):
            t0 = time.perf_counter()
            mapping = create(mname).map(dfg, cgra)
            dt = time.perf_counter() - t0
            times[mname][size] = dt
            iis[mname][size] = mapping.ii
            rows.append(
                {
                    "cells": size * size,
                    "ops": dfg.op_count(),
                    "mapper": mname,
                    "II": mapping.ii,
                    "time_s": round(dt, 3),
                }
            )
    return rows, times, iis


def test_scalability_sweep(benchmark):
    rows, times, iis = benchmark.pedantic(
        _sweep, iterations=1, rounds=1
    )
    print("\n" + ascii_table(rows, title="§IV-B — scalability sweep"))
    big = SIZES[-1]
    # The claim in miniature: on the largest array the hierarchical
    # mapper is at least 3x faster than annealing...
    assert times["himap"][big] * 3 < times["dresc"][big], (
        f"himap {times['himap'][big]:.1f}s vs dresc"
        f" {times['dresc'][big]:.1f}s"
    )
    # ...at comparable quality (II within 2x of the SA result).
    assert iis["himap"][big] <= 2 * iis["dresc"][big]
    # And annealing's time grows faster than the hierarchy's.
    growth_sa = times["dresc"][big] / max(times["dresc"][SIZES[0]], 1e-9)
    print(
        f"\nSA time growth {SIZES[0]}x{SIZES[0]} -> {big}x{big}:"
        f" x{growth_sa:.1f}; hierarchical stays"
        f" {times['himap'][big]:.2f}s"
    )
    assert growth_sa > 3.0
