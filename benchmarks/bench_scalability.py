"""§IV-B(b) — the scalability challenge.

"While legacy CGRAs are composed of tens of cells … modern CGRAs
contain hundreds to thousands."  HiMap's [26] published comparison is
against DRESC-lineage simulated annealing — hierarchy turns hours of
annealing into seconds of constructive mapping at comparable quality.
This bench reproduces that shape in miniature: array sizes sweep from
4x4 to 6x6 at constant ~60% utilisation; the SA mapper's time blows
up with the array while the hierarchical mapper stays constructive-
fast, and the IIs remain comparable.  (At 8x8 the annealer already
needs minutes — the bench stops where the point is made.)

Run as a script with ``--large`` for the *spatial* half of the same
story: dataflow chains of 100-200 ops on a 16x16 fabric, the clustered
two-phase placer against the flat spatial annealer and DRESC.  Emits
``BENCH_scale.json`` (committed) with the headline claim machine-
checked: the 200-op chain places in seconds via partition + analytical
seed + batched refinement, while the flat annealer fails outright and
the annealing-based alternatives that do finish need an order of
magnitude longer.
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.arch import presets
from repro.bench import ascii_table
from repro.core.exceptions import MapFailure
from repro.core.registry import create
from repro.ir import kernels, randdfg
from repro.parallel import TaskTimeout, time_limit

SIZES = [4, 5, 6]

#: --large sweep: chain lengths on the 16x16 fabric, and the per-cell
#: wall-clock budget.  The chain is the canonical bandwidth-friendly
#: scaling instance (``layered:N:1:1`` — see repro.ir.kernels spec
#: names); braided graphs stress routability instead and are covered
#: by the fuzzer.
LARGE_ARCH = "simple16x16"
LARGE_SIZES = [100, 150, 200]
LARGE_TIMEOUT = 60.0
#: cluster vs the flat spatial annealer and the spatial force-directed
#: mapper (like-for-like: all three emit one-cell-per-op spatial
#: bindings), with DRESC as the temporal reference point — it solves a
#: different problem (modulo schedule, II >= 1, values in RFs), so its
#: row contextualises the wall-clock but does not gate the target.
LARGE_MAPPERS = ("cluster", "sa_spatial", "graph_drawing", "dresc")
LARGE_FLAGSHIP_ONLY = ("graph_drawing",)  # minutes-slow: flagship cell only


def _sweep():
    rows = []
    times = {"dresc": {}, "himap": {}}
    iis = {"dresc": {}, "himap": {}}
    for size in SIZES:
        cgra = presets.simple_cgra(size, size)
        # ~0.6 ops per cell keeps utilisation constant across sizes.
        n_ops = int(0.6 * size * size)
        dfg = randdfg.layered(n_ops, width=max(2, size // 2), seed=7)
        for mname in ("dresc", "himap"):
            t0 = time.perf_counter()
            mapping = create(mname).map(dfg, cgra)
            dt = time.perf_counter() - t0
            times[mname][size] = dt
            iis[mname][size] = mapping.ii
            rows.append(
                {
                    "cells": size * size,
                    "ops": dfg.op_count(),
                    "mapper": mname,
                    "II": mapping.ii,
                    "time_s": round(dt, 3),
                }
            )
    return rows, times, iis


def test_scalability_sweep(benchmark):
    rows, times, iis = benchmark.pedantic(
        _sweep, iterations=1, rounds=1
    )
    print("\n" + ascii_table(rows, title="§IV-B — scalability sweep"))
    big = SIZES[-1]
    # The claim in miniature: on the largest array the hierarchical
    # mapper is at least 3x faster than annealing...
    assert times["himap"][big] * 3 < times["dresc"][big], (
        f"himap {times['himap'][big]:.1f}s vs dresc"
        f" {times['dresc'][big]:.1f}s"
    )
    # ...at comparable quality (II within 2x of the SA result).
    assert iis["himap"][big] <= 2 * iis["dresc"][big]
    # And annealing's time grows faster than the hierarchy's.
    growth_sa = times["dresc"][big] / max(times["dresc"][SIZES[0]], 1e-9)
    print(
        f"\nSA time growth {SIZES[0]}x{SIZES[0]} -> {big}x{big}:"
        f" x{growth_sa:.1f}; hierarchical stays"
        f" {times['himap'][big]:.2f}s"
    )
    assert growth_sa > 3.0


# ---------------------------------------------------------------------------
# --large: spatial placement at 16x16 scale
# ---------------------------------------------------------------------------
def _large_cell(
    mname: str, kname: str, cgra, timeout: float
) -> dict:
    dfg = kernels.kernel(kname)
    mapper = create(mname, seed=0)
    t0 = time.perf_counter()
    try:
        with time_limit(timeout):
            mapping = mapper.map(dfg, cgra)
        dt = time.perf_counter() - t0
        return {
            "mapper": mname,
            "kernel": kname,
            "ok": mapping.validate(raise_on_error=False) == [],
            "kind": mapping.kind,
            "time_s": round(dt, 3),
        }
    except (MapFailure, TaskTimeout) as ex:
        dt = time.perf_counter() - t0
        return {
            "mapper": mname,
            "kernel": kname,
            "ok": False,
            "kind": None,
            "time_s": round(dt, 3),
            "error": type(ex).__name__,
        }


def large_sweep(timeout: float = LARGE_TIMEOUT) -> dict:
    """The 16x16 chain sweep; returns the BENCH_scale.json payload."""
    cgra = presets.by_name(LARGE_ARCH)
    flagship = f"layered:{LARGE_SIZES[-1]}:1:1"
    cells = []
    for n in LARGE_SIZES:
        kname = f"layered:{n}:1:1"
        for mname in LARGE_MAPPERS:
            if mname in LARGE_FLAGSHIP_ONLY and kname != flagship:
                continue
            cells.append(_large_cell(mname, kname, cgra, timeout))
    by = {(c["mapper"], c["kernel"]): c for c in cells}
    ours = by[("cluster", flagship)]
    # The headline: cluster places the 200-op chain, and every mapper
    # attacking the *same problem* (a spatial binding) either
    # fails/times out or needs >= 10x the wall-clock.  DRESC's modulo
    # row is reported alongside for scale (it maps temporally, at
    # II >= 1 — not the one-result-per-cycle spatial artifact).
    outscaled = all(
        (not by[(m, flagship)]["ok"])
        or by[(m, flagship)]["time_s"] >= 10 * ours["time_s"]
        for m in LARGE_MAPPERS
        if m != "cluster"
        and by[(m, flagship)].get("kind") in (None, "spatial")
    )
    dresc = by.get(("dresc", flagship))
    return {
        "benchmark": "scalability-large",
        "arch": LARGE_ARCH,
        "timeout_s": timeout,
        "machine": {"cpu_count": os.cpu_count()},
        "targets": {
            "cluster_maps_200_op_chain": True,
            "spatial_competitors_fail_or_10x_slower": True,
        },
        "cells": cells,
        "cluster_ok_at_200": ours["ok"],
        "spatial_competitors_fail_or_10x_slower": outscaled,
        "dresc_temporal_reference_ratio": (
            round(dresc["time_s"] / max(ours["time_s"], 1e-9), 2)
            if dresc and dresc["ok"]
            else None
        ),
        "target_met": ours["ok"] and outscaled,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--large", action="store_true",
        help="run the 16x16 spatial sweep and emit BENCH_scale.json",
    )
    ap.add_argument(
        "--timeout", type=float, default=LARGE_TIMEOUT, metavar="S",
        help=f"per-cell wall-clock budget (default {LARGE_TIMEOUT})",
    )
    ap.add_argument(
        "--out",
        default=str(Path(__file__).parent / "BENCH_scale.json"),
        help="output path for the JSON report",
    )
    args = ap.parse_args(argv)
    if not args.large:
        ap.error("this entry point only implements --large "
                 "(the small sweep runs under pytest-benchmark)")
    report = large_sweep(args.timeout)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(ascii_table(
        [
            {k: ("-" if v is None else v) for k, v in c.items()}
            for c in report["cells"]
        ],
        title="16x16 spatial scaling sweep",
    ))
    print(f"\ntarget_met={report['target_met']} -> {args.out}")
    return 0 if report["target_met"] else 1


if __name__ == "__main__":
    sys.exit(main())
