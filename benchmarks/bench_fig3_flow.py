"""Fig. 3 — the classical compilation flow, end to end.

The figure walks a dot product through front-end, middle-end and
back-end, then shows three back-end outcomes: a spatial mapping, a
temporal mapping, and a modulo schedule whose II is 1 with two loop
iterations in flight.  This benchmark performs the whole journey on
real code and asserts each outcome, finishing with a cycle-accurate
simulation that exhibits the figure's overlapped iterations.
"""

from repro.api import map_dfg
from repro.arch import presets
from repro.controlflow import flatten_cdfg
from repro.frontend import compile_to_cdfg
from repro.ir.interp import evaluate
from repro.passes import standard_pipeline
from repro.sim.machine import simulate_mapping

SOURCE = """
kernel dot_product {
    sum = sum + a * b;   # BB3 of the figure's CDFG
    out sum;
}
"""


def _full_flow():
    cdfg = compile_to_cdfg(SOURCE)          # front-end
    dfg = standard_pipeline(flatten_cdfg(cdfg))  # middle-end
    cgra = presets.simple_cgra(4, 4)
    spatial = map_dfg(dfg, cgra, mapper="graph_drawing")      # back-end 1
    temporal = map_dfg(dfg, cgra, mapper="list_sched")        # back-end 2
    modulo = map_dfg(dfg, cgra, mapper="list_sched", ii=1)    # back-end 3
    return dfg, cgra, spatial, temporal, modulo


def test_fig3_compilation_flow(benchmark):
    dfg, cgra, spatial, temporal, modulo = benchmark.pedantic(
        _full_flow, iterations=1, rounds=1
    )
    print("\nfront+middle end produced:\n" + dfg.pretty())
    print("\nspatial mapping:\n" + spatial.describe())
    print("\nmodulo schedule:\n" + modulo.describe())

    # Figure's spatial mapping: one cell per op, no time axis.
    assert spatial.kind == "spatial" and spatial.validate() == []
    # Temporal mapping is valid and sequentially schedulable.
    assert temporal.validate() == []
    # The figure's headline: modulo scheduling reaches II = 1.
    assert modulo.ii == 1 and modulo.validate() == []

    # "The figure clearly shows that two different iterations of the
    # loop are being processed at the same time": with II=1 and a
    # 2-cycle schedule, cycle 1 runs iteration 1's multiply and
    # iteration 0's add simultaneously.
    assert modulo.schedule_length == 2

    a = [1, 2, 3, 4, 5]
    b = [5, 4, 3, 2, 1]
    sim = simulate_mapping(modulo, 5, {"a": a, "b": b})
    ref = evaluate(dfg, 5, {"a": a, "b": b})
    assert sim.outputs == ref
    assert sim.outputs["sum"][-1] == sum(x * y for x, y in zip(a, b))
    # Overlap: 5 iterations complete in ~5 cycles, not 5 x 2.
    assert sim.cycles <= 5 * modulo.ii + modulo.schedule_length
