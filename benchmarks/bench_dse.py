"""Ablation — the architectural dimensions of §I, swept.

"The design space is huge and includes several architectural
dimensions: processing elements and their homogeneity,
interconnection network, context frame…"  This bench sweeps a compact
slice (size x topology x RF depth) and asserts the relationships the
survey's architecture citations report: richer interconnects map more
and faster at higher cost; bigger register files help routing-in-time;
the Pareto frontier is non-trivial (no single design dominates).
"""

from repro.bench import ascii_table
from repro.dse import explore, pareto_front

SPACE = [
    {"size": 4, "topology": t, "rf_size": r, "mem_cells": "all"}
    for t in ("mesh", "diagonal", "one_hop", "crossbar")
    for r in (2, 8)
]
SUITE = ["dot_product", "fir8", "sobel_x", "conv3x3"]


def test_architecture_dse(benchmark):
    points = benchmark.pedantic(
        lambda: explore(SPACE, SUITE), iterations=1, rounds=1
    )
    rows = [
        {
            "arch": p.label(),
            "perf": round(p.performance, 3),
            "cost": round(p.cost, 0),
            "mapped": f"{100 * p.success_rate:.0f}%",
        }
        for p in points
    ]
    print("\n" + ascii_table(rows, title="§I — design-space sweep"))

    def best_for(topo):
        return max(
            (p for p in points if p.topology == topo),
            key=lambda p: p.performance,
        )

    mesh, xbar = best_for("mesh"), best_for("crossbar")
    # Richer interconnect: at least as fast, strictly more expensive.
    assert xbar.performance >= mesh.performance
    assert xbar.cost > mesh.cost
    # Every design point maps the full suite (the mappers are robust).
    assert all(p.success_rate == 1.0 for p in points)
    # The frontier trades cost for performance: >= 2 non-dominated points.
    front = pareto_front(points)
    print("\nPareto frontier: " + ", ".join(p.label() for p in front))
    assert len(front) >= 2
