"""Ablation — routing discipline: greedy vs negotiated congestion.

The design choice DESIGN.md calls out: the constructive mappers route
greedily (first feasible path wins) while SPR negotiates congestion
PathFinder-style.  On congested instances, negotiation routes edge
sets the greedy router gives up on; on easy instances both succeed and
greedy is cheaper.

Runnable as a script too: ``python bench_routing_ablation.py
--engine flat|scalar|both`` runs the same cells through the chosen
search engine (``flat`` = the array core in
:mod:`repro.mappers.routecore`, ``scalar`` = the original dict/heapq
reference; see DESIGN.md §13) so the disciplines can be compared on
either implementation, or both side by side.
"""

import argparse
import time

from repro.arch import presets
from repro.bench import ascii_table
from repro.core.resources import Occupancy
from repro.mappers.routing import RouteRequest, Router


def _congested_instance(cgra):
    """A 3x3 instance where the straight paths are all blocked."""
    occ = Occupancy(cgra, ii=4)
    # Ops fill the centre column at the routing cycles.
    occ.place_op(90, 1, 1)
    occ.place_op(91, 4, 1)
    occ.place_op(92, 7, 1)
    reqs = [
        RouteRequest(0, src_cell=0, t_emit=0, dst_cell=2, t_consume=3),
        RouteRequest(3, src_cell=3, t_emit=0, dst_cell=5, t_consume=3),
        RouteRequest(6, src_cell=6, t_emit=0, dst_cell=8, t_consume=3),
    ]
    return occ, reqs


def _run(router_kind: str, engine: str = "flat"):
    cgra = presets.simple_cgra(3, 3)
    occ, reqs = _congested_instance(cgra)
    router = Router(cgra, engine=engine)
    routed = 0
    total_len = 0
    t0 = time.perf_counter()
    history: dict = {}
    for req in reqs:
        if router_kind == "greedy":
            steps = router.find(occ, req)
        else:
            found = router.find_negotiated(occ, req, history=history)
            steps = found[0] if found else None
        if steps is not None:
            routed += 1
            total_len += len(steps)
    dt = 1000 * (time.perf_counter() - t0)
    return {
        "router": router_kind,
        "engine": engine,
        "routed": f"{routed}/{len(reqs)}",
        "steps": total_len,
        "time_ms": round(dt, 3),
        "_routed": routed,
    }


def test_routing_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: [_run("greedy"), _run("negotiated")],
        iterations=1, rounds=1,
    )
    print("\n" + ascii_table(
        [{k: v for k, v in r.items() if not k.startswith("_")}
         for r in rows],
        title="Routing ablation — congested 3x3",
    ))
    greedy, negotiated = rows
    # Negotiation never routes fewer edges than the greedy discipline,
    # and on this congested instance it routes them all.
    assert negotiated["_routed"] >= greedy["_routed"]
    assert negotiated["_routed"] == 3


def test_ablation_engine_independent(benchmark):
    """The ablation's conclusion must not depend on the engine: flat
    and scalar route the same edge sets with the same step counts."""
    rows = benchmark.pedantic(
        lambda: [
            _run(kind, engine)
            for kind in ("greedy", "negotiated")
            for engine in ("flat", "scalar")
        ],
        iterations=1, rounds=1,
    )
    by_kind = {}
    for r in rows:
        by_kind.setdefault(r["router"], []).append(r)
    for kind, pair in by_kind.items():
        assert pair[0]["routed"] == pair[1]["routed"], kind
        assert pair[0]["steps"] == pair[1]["steps"], kind


def test_easy_instance_both_succeed(benchmark):
    cgra = presets.simple_cgra(4, 4)

    def run():
        occ = Occupancy(cgra, ii=4)
        router = Router(cgra)
        req = RouteRequest(0, 0, 0, 5, 3)
        greedy = router.find(occ, req)
        nego = router.find_negotiated(occ, req)
        return greedy, nego

    greedy, nego = benchmark.pedantic(run, iterations=1, rounds=1)
    assert greedy is not None and nego is not None
    # Same path length on an uncongested fabric.
    assert len(greedy) == len(nego[0])


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--engine", choices=["flat", "scalar", "both"], default="flat",
        help="route-search engine to ablate on (default flat; 'both'"
        " prints the two engines side by side)",
    )
    args = ap.parse_args(argv)
    engines = ["flat", "scalar"] if args.engine == "both" else [args.engine]
    rows = [
        _run(kind, engine)
        for engine in engines
        for kind in ("greedy", "negotiated")
    ]
    print(ascii_table(
        [{k: v for k, v in r.items() if not k.startswith("_")}
         for r in rows],
        title="Routing ablation — congested 3x3",
    ))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
