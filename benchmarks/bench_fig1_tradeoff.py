"""Fig. 1 — flexibility / performance / energy-efficiency trade-off.

The paper reproduces Liu et al.'s qualitative triangle; here the five
architecture classes execute the same kernel suite under explicit
models (:mod:`repro.sim.archcompare`) and the triangle's orderings are
asserted as numbers: CGRAs sit between instruction processors and
hardwired datapaths on both axes.
"""

from repro.bench import ascii_table
from repro.sim.archcompare import compare_architectures


def test_fig1_tradeoff(benchmark):
    points = benchmark.pedantic(
        compare_architectures, iterations=1, rounds=1
    )
    rows = [
        {
            "class": p.name,
            "perf (iters/cycle)": round(p.performance, 3),
            "energy/iter": round(p.energy_per_iter, 1),
            "efficiency": round(p.efficiency, 4),
            "flexibility": p.flexibility,
        }
        for p in points
    ]
    print("\n" + ascii_table(rows, title="Fig. 1 — architecture trade-off"))
    by = {p.name: p for p in points}
    # Performance axis: hardwired > reconfigurable > programmable.
    assert (
        by["ASIC"].performance
        >= by["FPGA"].performance
        >= by["CGRA"].performance
        > by["CPU"].performance
    )
    # Efficiency axis: same direction.
    assert (
        by["ASIC"].efficiency
        > by["CGRA"].efficiency
        > by["VLIW"].efficiency
        > by["CPU"].efficiency
    )
    # Flexibility axis: opposite direction — the trade-off itself.
    assert (
        by["CPU"].flexibility
        > by["CGRA"].flexibility
        > by["ASIC"].flexibility
    )
