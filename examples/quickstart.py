"""Quickstart: map a dot product onto a 4x4 CGRA and run it.

The survey's Fig. 3 journey in twenty lines:

    source -> CDFG -> DFG -> modulo mapping (II=1) -> simulation

Run:  python examples/quickstart.py
"""

from repro import compile_source, map_dfg
from repro.arch import presets
from repro.core.metrics import metrics_of
from repro.ir import kernels
from repro.sim import render_contexts, simulate_mapping

# A CGRA model: 4x4 homogeneous mesh, the survey's Fig. 2 machine.
cgra = presets.simple_cgra(4, 4)
print(cgra.render())

# Option A: start from a library kernel.
dfg = kernels.dot_product()
mapping = map_dfg(dfg, cgra, mapper="dresc")
print(f"\n{mapping.describe()}")
print(f"metrics: {metrics_of(mapping).row()}")

# Option B: start from source code (front end + middle end included).
mapping2 = compile_source(
    """
    kernel dot {
        sum = sum + a * b;
        out sum;
    }
    """,
    cgra,
    mapper="list_sched",
)
assert mapping2.ii == 1  # software-pipelined: one result per cycle

# The backend contract: actual configuration contexts.
print("\n" + render_contexts(mapping2))

# And the proof it computes: cycle-accurate simulation.
a = [1, 2, 3, 4, 5, 6]
b = [6, 5, 4, 3, 2, 1]
sim = simulate_mapping(mapping2, len(a), {"a": a, "b": b})
expected = sum(x * y for x, y in zip(a, b))
print(f"\nsimulated dot product = {sim.outputs['sum'][-1]}"
      f" (expected {expected}) in {sim.cycles} cycles")
assert sim.outputs["sum"][-1] == expected
