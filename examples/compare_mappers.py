"""Survey in action: twenty years of mappers on one workload.

Runs a representative mapper from every Table I technique family on
the same kernels and architecture, printing the comparison the survey
could only gesture at: who maps what, at which II, and how long each
method deliberates — "to provide high quality solution with fast
compilation time" (§II-C).

Run:  python examples/compare_mappers.py
"""

from repro.arch import presets
from repro.bench import ascii_table, run_matrix
from repro.core.registry import catalog

CGRA = presets.simple_cgra(4, 4)
KERNELS = ["dot_product", "fir4", "sobel_x", "if_select", "iir_biquad"]

# One representative per Table I cell family.
REPRESENTATIVES = {
    "list_sched": "heuristic (list scheduling, 1998 lineage)",
    "edge_centric": "heuristic (edge-centric MS, EMS 2008)",
    "himap": "heuristic (hierarchical, HiMap 2021)",
    "dresc": "meta-heuristic (SA, DRESC 2002)",
    "spr": "meta-heuristic (SA+PathFinder, SPR 2009)",
    "ilp": "exact (ILP, Brenner 2006 lineage)",
    "sat": "exact (SAT, Miyasaka 2021)",
    "csp": "exact (CP, Raffin 2010)",
}

print("The contenders:")
meta = catalog()
for name, blurb in REPRESENTATIVES.items():
    info = meta[name]
    print(f"  {name:12s} {blurb:48s} modeled after {info['modeled_after']}")

results = run_matrix(list(REPRESENTATIVES), KERNELS, CGRA)
print("\n" + ascii_table(
    [r.row() for r in results],
    title=f"\nAll mappers on {CGRA.name}",
))

# Who won each kernel?
print("\nBest II per kernel (ties broken by mapping time):")
for kname in KERNELS:
    rows = [r for r in results if r.kernel == kname and r.ok]
    best = min(rows, key=lambda r: (r.ii, r.time_ms))
    print(f"  {kname:12s} II={best.ii} by {best.mapper}"
          f" ({best.time_ms:.1f} ms)")
