"""Control flow on a CGRA: the four §III-B1 methods, side by side.

Compiles one if-then-else kernel from source, maps it with all four
branch-handling techniques, and verifies every one computes the same
function — then shows the trade-offs (extra memory ops vs predicate
routing vs slot sharing vs context usage).

Run:  python examples/branchy_kernel.py
"""

from repro.arch import presets
from repro.controlflow import full_predication, partial_predication
from repro.controlflow.direct_cdfg import map_direct
from repro.controlflow.dual_issue import dual_issue, map_dual_issue
from repro.core.registry import create
from repro.frontend import compile_to_cdfg
from repro.ir.interp import evaluate
from repro.sim import simulate_mapping

SOURCE = """
kernel relu_scale {
    t = x * w;
    if (t > 0) { y = t >> 2; } else { y = 0 - (t >> 4); }
    out y;
}
"""

cgra = presets.simple_cgra(4, 4)
cdfg = compile_to_cdfg(SOURCE)
print(cdfg.pretty())

xs = [5, -3, 8, -1, 0, 12]
ws = [2, 4, 1, 9, 7, 3]


def reference(x, w):
    t = x * w
    return t >> 2 if t > 0 else -(t >> 4)


expected = [reference(x, w) for x, w in zip(xs, ws)]

# 1. Partial predication: both arms + SELECT at the join.
partial = partial_predication(cdfg)
m1 = create("list_sched").map(partial, cgra)
sim1 = simulate_mapping(m1, len(xs), {"x": xs, "w": ws})
assert sim1.outputs["y"] == expected

# 2. Full predication: predicated arm ops (predicate gets routed).
full = full_predication(cdfg)
m2 = create("list_sched").map(full, cgra)
sim2 = simulate_mapping(m2, len(xs), {"x": xs, "w": ws})
assert sim2.outputs["y"] == expected

# 3. Dual-issue single execution: opposite arms share slots.
dise_dfg, pairs = dual_issue(cdfg)
m3 = map_dual_issue(dise_dfg, pairs, cgra)
assert m3.validate() == []

# 4. Direct CDFG mapping: each block its own context region.
m4 = map_direct(cdfg, cgra)
assert m4.validate() == []


def slots(m):
    return len({(m.binding[n], m.schedule[n] % m.ii) for n in m.binding})


print(f"\npartial predication : ops={partial.op_count()}, "
      f"II={m1.ii}, slots={slots(m1)}")
print(f"full predication    : ops={full.op_count()}, "
      f"II={m2.ii}, slots={slots(m2)}"
      f" (+{sum(1 for n in full.nodes() if n.pred is not None)}"
      " predicate routes)")
print(f"dual-issue          : ops={dise_dfg.op_count()}, "
      f"II={m3.ii}, slots={slots(m3)} (arms overlap)")
print(f"direct CDFG         : contexts={m4.total_contexts}, "
      f"taken-path cycles={m4.path_cycles(True)},"
      f" untaken={m4.path_cycles(False)}")

# Reference interpretation agrees with everything above.
assert evaluate(partial, len(xs), {"x": xs, "w": ws})["y"] == expected
print("\nall four methods compute the same function — trade-offs only.")
