"""Domain scenario: an edge-detection pipeline on a CGRA.

The survey's first wave: "signal processing applications, especially
multimedia applications like image, audio, and video, for embedded
systems".  This example runs a Sobel horizontal gradient over an image
strip — the kernel is mapped once, then the fabric streams one pixel
neighbourhood per initiation.

Run:  python examples/image_pipeline.py
"""

from repro import map_dfg
from repro.arch import presets
from repro.controlflow.hwloops import loop_execution_cycles
from repro.ir import kernels
from repro.sim import simulate_mapping

# A small grayscale image (8x8) with a vertical edge down the middle.
W = H = 8
image = [[0 if x < W // 2 else 9 for x in range(W)] for y in range(H)]

cgra = presets.adres_like(4, 4)
dfg = kernels.sobel_x()
mapping = map_dfg(dfg, cgra, mapper="edge_centric")
print(f"sobel_x on {cgra.name}: II={mapping.ii},"
      f" makespan={mapping.schedule_length},"
      f" cells={len(mapping.cells_used())}")

# Stream the interior pixels' 3x3 neighbourhoods through the fabric.
coords = [
    (x, y) for y in range(1, H - 1) for x in range(1, W - 1)
]
inputs = {
    f"p{i}": [
        image[y + dy][x + dx]
        for (x, y) in coords
    ]
    for i, (dx, dy) in enumerate(
        [(dx, dy) for dy in (-1, 0, 1) for dx in (-1, 0, 1)]
    )
}
sim = simulate_mapping(mapping, len(coords), inputs)

# Reassemble and display the gradient magnitude map.
out = iter(sim.outputs["gx"])
rows = []
for y in range(1, H - 1):
    rows.append(" ".join(f"{next(out):2d}" for _ in range(1, W - 1)))
print("\n|gx| over the image interior:")
print("\n".join(rows))

# The edge columns light up, flat regions stay dark.
gx = sim.outputs["gx"]
assert max(gx) > 0 and min(gx) == 0

# Throughput accounting, with and without hardware loop support.
pixels = len(coords)
print(f"\n{pixels} pixels in {sim.cycles} cycles"
      f" ({sim.throughput:.2f} pixels/cycle)")
print(f"with sw loop control: {loop_execution_cycles(mapping, pixels, hw_loop=False)} cycles")
print(f"with hw loop support: {loop_execution_cycles(mapping, pixels, hw_loop=True)} cycles")
