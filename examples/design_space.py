"""Architecture exploration: which CGRA should you build?

The survey's introduction lists the design dimensions ("processing
elements and their homogeneity, interconnection network, …") and its
trends section praises the open-source exploration frameworks
([75]-[77]).  This example sweeps a compact design space against a
kernel suite and prints the cost/performance Pareto frontier.

Run:  python examples/design_space.py
"""

from repro.bench import ascii_table
from repro.dse import explore, pareto_front

SPACE = [
    {"size": s, "topology": t, "rf_size": r, "mem_cells": "all"}
    for s in (4, 5)
    for t in ("mesh", "diagonal", "one_hop")
    for r in (2, 8)
]
SUITE = ["dot_product", "fir4", "sobel_x", "if_select", "sad"]

points = explore(SPACE, SUITE, mapper="list_sched")
rows = [
    {
        "architecture": p.label(),
        "perf (1/II)": round(p.performance, 3),
        "cost": round(p.cost, 0),
        "mapped": f"{100 * p.success_rate:.0f}%",
    }
    for p in points
]
print(ascii_table(rows, title=f"{len(points)} design points, "
                              f"{len(SUITE)}-kernel suite"))

front = pareto_front(points)
print("\nPareto frontier (cost vs performance):")
for p in front:
    print(f"  {p.label():28s} perf={p.performance:.3f}"
          f" cost={p.cost:.0f}")

# Richer interconnects should appear on the frontier's high end.
assert front, "frontier cannot be empty"
best = max(points, key=lambda p: p.performance)
print(f"\nfastest architecture: {best.label()}")
